#include "power/energy_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace parrot::power
{

namespace
{

/** Base (4-wide, 128-ROB, 32-IQ) per-event energies in model pJ. */
double
baseEnergy(PowerEvent e)
{
    switch (e) {
      case PowerEvent::IcacheRead:    return 40.0;
      case PowerEvent::IcacheMiss:    return 20.0;
      case PowerEvent::BpLookup:      return 8.0;
      case PowerEvent::BpUpdate:      return 4.0;
      case PowerEvent::BtbAccess:     return 6.0;
      case PowerEvent::DecodeWeight:  return 30.0;

      case PowerEvent::TcRead:        return 6.0;
      case PowerEvent::TcWrite:       return 9.0;
      case PowerEvent::TpLookup:      return 6.0;
      case PowerEvent::TpUpdate:      return 3.0;
      case PowerEvent::HotFilter:     return 2.0;
      case PowerEvent::BlazeFilter:   return 2.0;
      case PowerEvent::TraceBuildUop: return 3.0;
      case PowerEvent::OptimizerUop:  return 6.0;

      case PowerEvent::Rename:        return 12.0;
      case PowerEvent::RobWrite:      return 8.0;
      case PowerEvent::RobRead:       return 6.0;
      case PowerEvent::IqInsert:      return 8.0;
      case PowerEvent::IqWakeup:      return 2.0;
      case PowerEvent::IqSelect:      return 10.0;
      case PowerEvent::RegRead:       return 6.0;
      case PowerEvent::RegWrite:      return 8.0;

      case PowerEvent::AluOp:         return 10.0;
      case PowerEvent::MulOp:         return 30.0;
      case PowerEvent::DivOp:         return 45.0;
      case PowerEvent::FpOp:          return 25.0;
      case PowerEvent::SimdOp:        return 30.0;
      case PowerEvent::CtrlOp:        return 6.0;
      case PowerEvent::AguOp:         return 8.0;

      case PowerEvent::DcacheRead:    return 45.0;
      case PowerEvent::DcacheWrite:   return 50.0;
      case PowerEvent::DcacheMiss:    return 30.0;
      case PowerEvent::L2Access:      return 180.0;
      case PowerEvent::MemAccess:     return 600.0;

      case PowerEvent::Commit:        return 4.0;
      case PowerEvent::PipeFlush:     return 100.0;
      case PowerEvent::StateSwitch:   return 120.0;

      // Power-state machinery. GateIdleClock is per clock-weight unit
      // per idle-ungated cycle — small, but it accrues every cycle a
      // gateable unit idles awake, which is what gating saves. Wakes
      // are rare and priced like small structure accesses (clock) or a
      // rail recharge (power).
      case PowerEvent::GateIdleClock: return 2.0;
      case PowerEvent::GateClockWake: return 15.0;
      case PowerEvent::GatePowerWake: return 80.0;

      default:
        PARROT_PANIC("baseEnergy: bad event %d", static_cast<int>(e));
    }
}

/** True when the event's hardware is ported proportionally to width. */
bool
scalesWithWidth(PowerEvent e)
{
    switch (e) {
      case PowerEvent::Rename:
      case PowerEvent::IqInsert:
      case PowerEvent::IqWakeup:
      case PowerEvent::IqSelect:
      case PowerEvent::RegRead:
      case PowerEvent::RegWrite:
      case PowerEvent::RobWrite:
      case PowerEvent::RobRead:
      case PowerEvent::Commit:
        return true;
      default:
        return false;
    }
}

} // namespace

EnergyModel::EnergyModel(const CoreScaling &scaling) : scale(scaling)
{
    PARROT_ASSERT(scale.width >= 1 && scale.robSize >= 8 &&
                  scale.iqSize >= 4,
                  "EnergyModel: bad core scaling");
    const double width_factor =
        std::pow(scale.width / 4.0, CoreScaling::widthExponent);
    const double decode_factor =
        std::pow(scale.width / 4.0, CoreScaling::decodeExponent);
    const double rob_factor = std::sqrt(scale.robSize / 128.0);
    const double iq_factor = std::sqrt(scale.iqSize / 32.0);

    for (unsigned i = 0; i < numPowerEvents; ++i) {
        auto e = static_cast<PowerEvent>(i);
        double v = baseEnergy(e);
        if (scalesWithWidth(e))
            v *= width_factor;
        if (e == PowerEvent::DecodeWeight)
            v *= decode_factor;
        if (e == PowerEvent::RobWrite || e == PowerEvent::RobRead)
            v *= rob_factor;
        if (e == PowerEvent::IqInsert || e == PowerEvent::IqWakeup ||
            e == PowerEvent::IqSelect) {
            v *= iq_factor;
        }
        table[i] = v;
    }
}

double
LeakageModel::leakageEnergy(double cycles) const
{
    if (std::isnan(pmaxPerCycle)) {
        PARROT_FATAL("LeakageModel: pmaxPerCycle was never calibrated "
                     "(set it explicitly; 0.0 disables leakage)");
    }
    // CYC in the paper's formula is wall time in nominal-clock cycles;
    // dividing by freqGHz converts elapsed cycles at the configured
    // clock back to time. Exact no-op at the 1 GHz nominal.
    return pmaxPerCycle * (0.05 * l2MegaBytes + 0.4 * coreAreaFactor) *
           cycles / freqGHz;
}

double
LeakageModel::leakageSaved(double gated_area_cycles) const
{
    if (gated_area_cycles == 0.0)
        return 0.0;
    if (std::isnan(pmaxPerCycle)) {
        PARROT_FATAL("LeakageModel: pmaxPerCycle was never calibrated "
                     "(set it explicitly; 0.0 disables leakage)");
    }
    return pmaxPerCycle * 0.4 * coreAreaFactor * gated_area_cycles /
           freqGHz;
}

double
cubicMipsPerWatt(double insts, double cycles, double energy,
                 double freq_ghz)
{
    PARROT_ASSERT(insts > 0 && cycles > 0 && energy > 0 && freq_ghz > 0,
                  "cubicMipsPerWatt: non-positive inputs");
    const double seconds = cycles * 1e-9 / freq_ghz;
    const double mips = insts / 1e6 / seconds;
    const double watts = energy * 1e-12 / seconds;
    return mips * mips * mips / watts;
}

} // namespace parrot::power
