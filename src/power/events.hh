/**
 * @file
 * The power-event vocabulary: every energy-consuming microarchitectural
 * action the performance simulation can emit. WATTCH-style accounting
 * (§3.2 of the paper) counts these events and multiplies by a per-event
 * energy matrix.
 */

#ifndef PARROT_POWER_EVENTS_HH
#define PARROT_POWER_EVENTS_HH

#include <cstdint>

namespace parrot::power
{

/** One countable energy event. */
enum class PowerEvent : std::uint8_t
{
    // Cold front-end.
    IcacheRead,
    IcacheMiss,
    BpLookup,
    BpUpdate,
    BtbAccess,
    DecodeWeight,   //!< per unit of decode weight (serial CISC decode)

    // Hot front-end / trace unit.
    TcRead,         //!< trace-cache read (per uop delivered)
    TcWrite,        //!< trace-cache write (per uop inserted)
    TpLookup,
    TpUpdate,
    HotFilter,
    BlazeFilter,
    TraceBuildUop,  //!< trace-construction buffer work, per uop
    OptimizerUop,   //!< optimizer work, per uop per pass

    // Backend, per uop.
    Rename,
    RobWrite,
    RobRead,
    IqInsert,
    IqWakeup,       //!< per tag broadcast match
    IqSelect,
    RegRead,        //!< per source operand
    RegWrite,       //!< per destination operand

    // Execution, per uop.
    AluOp,
    MulOp,
    DivOp,
    FpOp,
    SimdOp,
    CtrlOp,
    AguOp,          //!< address generation for loads/stores

    // Data-side memory.
    DcacheRead,
    DcacheWrite,
    DcacheMiss,
    L2Access,
    MemAccess,

    // Retirement and recovery.
    Commit,
    PipeFlush,      //!< full pipeline flush (mispredict/assert fail)
    StateSwitch,    //!< split-core register state transfer

    // Power-state machinery (zero-count unless gating is enabled).
    GateIdleClock,  //!< one idle-but-ungated cycle of unit clock tree
    GateClockWake,  //!< wake from a clock-gated sleep state
    GatePowerWake,  //!< wake from a power-gated sleep state

    NumEvents
};

/** Number of distinct power events. */
inline constexpr unsigned numPowerEvents =
    static_cast<unsigned>(PowerEvent::NumEvents);

/** Human-readable event name. */
const char *powerEventName(PowerEvent e);

/**
 * Reporting unit for the Figure 4.11 energy breakdown. Every event maps
 * onto exactly one unit.
 */
enum class PowerUnit : std::uint8_t
{
    FrontEnd,   //!< icache, predictors, decode
    TraceUnit,  //!< trace cache, trace predictor, filters, optimizer
    Rename,
    Window,     //!< issue queue (wakeup/select)
    RegFile,
    Exec,       //!< functional units
    RobCommit,  //!< ROB and retirement
    L1D,
    L2,
    Leakage,
    NumUnits
};

/** Number of reporting units. */
inline constexpr unsigned numPowerUnits =
    static_cast<unsigned>(PowerUnit::NumUnits);

/** Human-readable unit name. */
const char *powerUnitName(PowerUnit u);

/** The reporting unit an event belongs to. */
PowerUnit unitOf(PowerEvent e);

} // namespace parrot::power

#endif // PARROT_POWER_EVENTS_HH
