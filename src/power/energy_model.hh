/**
 * @file
 * The WATTCH/TEMPEST-style energy matrix (§3.2 of the paper): a
 * per-event energy cost, scaled by core aggressiveness, plus the
 * paper's leakage formula.
 *
 * Absolute values are self-consistent model picojoules, not a specific
 * Intel process — the paper's conclusions (and our reproduction) rest
 * on *relative* energies between configurations. The structural scaling
 * captures the superlinear cost of width: rename, wakeup/select,
 * register-file ports and parallel CISC decode all grow faster than
 * linearly with machine width, which is exactly why the paper's 8-wide
 * W model is so energy-inefficient.
 */

#ifndef PARROT_POWER_ENERGY_MODEL_HH
#define PARROT_POWER_ENERGY_MODEL_HH

#include <array>
#include <limits>

#include "power/events.hh"

namespace parrot::power
{

/** Structural parameters that scale the per-event energies. */
struct CoreScaling
{
    unsigned width = 4;     //!< rename/issue/commit width
    unsigned robSize = 128;
    unsigned iqSize = 32;

    /** Exponent of the width growth for ported structures. Calibrated
     * so the 8-wide W model lands at the paper's ~1.6-1.7x total
     * energy of N (the per-event energy approximates energy per unit
     * of *work*, so port/selection growth appears here, not in event
     * counts). */
    static constexpr double widthExponent = 0.85;
    /** Exponent for the parallel variable-length decoder. */
    static constexpr double decodeExponent = 0.9;
};

/**
 * Per-event energy table for one core configuration.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const CoreScaling &scaling);

    /** Energy of one event occurrence (model pJ). */
    double
    energyOf(PowerEvent e) const
    {
        return table[static_cast<unsigned>(e)];
    }

    const CoreScaling &scaling() const { return scale; }

  private:
    CoreScaling scale;
    std::array<double, numPowerEvents> table;
};

/**
 * The paper's leakage model:
 *   LE = Pmax * (0.05 * M + 0.4 * K) * CYC
 * where Pmax is the per-cycle dynamic power of the hottest application
 * on the base OOO model, M the L2 size in MB and K the core-area factor
 * relative to the standard 4-wide core.
 *
 * The paper's CYC is wall time expressed in nominal-clock cycles.
 * Leakage is a wall-time phenomenon, so under DVFS the same cycle count
 * at a lower frequency must leak *more*: leakageEnergy() divides by
 * freqGHz to convert cycles back to time. At the nominal 1 GHz this is
 * an exact no-op (x / 1.0 == x bit-for-bit).
 *
 * pmaxPerCycle is deliberately default-initialized to NaN, meaning
 * "never calibrated": evaluating leakage through it is a hard error,
 * not silent zero leakage (which quietly inflates CMPW — exactly the
 * failure mode of a skipped or failed calibration). An explicit 0.0
 * means "leakage modeling disabled" and is valid.
 */
struct LeakageModel
{
    /** Model pJ/cycle, calibrated externally; NaN until then. */
    double pmaxPerCycle = std::numeric_limits<double>::quiet_NaN();
    double l2MegaBytes = 1.0;  //!< M
    double coreAreaFactor = 1.0; //!< K
    double freqGHz = 1.0;      //!< clock relative to the 1 GHz nominal

    /** Total leakage energy for a run of the given length (in cycles
     * of the configured clock). Fatal if Pmax was never calibrated. */
    double leakageEnergy(double cycles) const;

    /**
     * Leakage energy *saved* by power-gated units: the 0.4*K core term
     * pro-rated by area-weighted gated cycles (sum over units of
     * areaShare x gatedCycles). The caller subtracts this from
     * leakageEnergy(); it is never larger (area shares sum below 1 and
     * gated cycles never exceed run cycles).
     */
    double leakageSaved(double gated_area_cycles) const;
};

/**
 * Cubic-MIPS-per-Watt (CMPW), the paper's power-awareness metric. The
 * clock converts cycles to seconds (the paper's normalized
 * 1-cycle-per-ns corresponds to freq_ghz = 1). Only ratios between
 * configurations are meaningful.
 *
 * @param insts committed instructions.
 * @param cycles elapsed cycles.
 * @param energy total energy in model pJ.
 * @param freq_ghz clock frequency relative to the 1 GHz nominal.
 */
double cubicMipsPerWatt(double insts, double cycles, double energy,
                        double freq_ghz = 1.0);

} // namespace parrot::power

#endif // PARROT_POWER_ENERGY_MODEL_HH
