#include "tracecache/constructor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace parrot::tracecache
{

Trace
constructTrace(const TraceCandidate &candidate)
{
    PARROT_ASSERT(!candidate.path.empty(), "constructTrace: empty path");
    PARROT_ASSERT(candidate.uopCount <= maxTraceUops,
                  "constructTrace: candidate exceeds frame capacity");

    Trace trace;
    trace.tid = candidate.tid;
    trace.path = candidate.path;
    trace.uops.reserve(candidate.uopCount);

    const std::size_t last = candidate.path.size() - 1;
    for (std::size_t i = 0; i < candidate.path.size(); ++i) {
        const TraceInstRef &ref = candidate.path[i];
        const auto &uops = ref.inst->uops;
        for (std::size_t j = 0; j < uops.size(); ++j) {
            TraceUop tu;
            tu.instIdx = static_cast<std::int16_t>(i);
            tu.uopIdx = static_cast<std::int8_t>(j);
            if (uops[j].kind == isa::UopKind::Branch && i != last) {
                // Internal conditional branch -> assert with the
                // embedded direction; a dynamic mismatch aborts the
                // whole trace. The *final* CTI stays a plain branch:
                // no later work in this trace depends on it, so a
                // wrong direction is an ordinary next-fetch
                // misprediction, not an atomic abort.
                tu.uop = isa::makeAssert(ref.taken,
                                         ref.inst->takenTarget);
            } else {
                tu.uop = uops[j];
            }
            trace.uops.push_back(tu);
        }
    }

    trace.originalUopCount = static_cast<std::uint16_t>(trace.uops.size());
    trace.originalDepHeight =
        static_cast<std::uint16_t>(computeDepHeight(trace.uops));
    trace.depHeight = trace.originalDepHeight;
    return trace;
}

unsigned
computeDepHeight(const std::vector<TraceUop> &uops)
{
    // Longest latency-weighted path through register dependences;
    // height[r] is the completion depth of the latest writer of r.
    // Latency weighting (rather than uop counting) makes the metric
    // agree with what the scheduler and SIMDifier actually optimize.
    unsigned height[isa::numArchRegs] = {};
    unsigned longest = 0;

    for (const TraceUop &tu : uops) {
        const isa::Uop &uop = tu.uop;
        unsigned depth = 0;
        RegId srcs[4];
        unsigned n = uop.sources(srcs);
        for (unsigned i = 0; i < n; ++i)
            depth = std::max(depth, height[srcs[i]]);
        depth += isa::uopLatency(uop);

        if (uop.hasDst())
            height[uop.effectiveDst()] = depth;
        if (uop.dst2 != invalidReg)
            height[uop.dst2] = depth;
        longest = std::max(longest, depth);
    }
    return longest;
}

} // namespace parrot::tracecache
