/**
 * @file
 * The trace predictor: predicts the next TID (start address plus the
 * full internal branch-direction string) from the previous trace and
 * the upcoming fetch address. A successful prediction steers fetch to
 * the hot pipeline (§2.3's fetch selector gives it priority over the
 * branch predictor).
 */

#ifndef PARROT_TRACECACHE_PREDICTOR_HH
#define PARROT_TRACECACHE_PREDICTOR_HH

#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "tracecache/tid.hh"

namespace parrot::tracecache
{

/** Trace predictor configuration. */
struct TracePredictorConfig
{
    unsigned numEntries = 2048; //!< paper: 2K entries in the TON model
    /** Hysteresis on replacement (a new path must recur
     * before it displaces an established prediction). */
    unsigned counterBits = 3;

    void
    validate() const
    {
        if (!isPowerOfTwo(numEntries))
            PARROT_FATAL("trace predictor entries must be a power of two");
    }
};

/**
 * Hybrid next-TID predictor with hysteresis: a path-contextual
 * component (keyed by previous-trace start address + fetch address)
 * backed by an anchor component keyed by the fetch address alone. The
 * contextual component wins when confident; the anchor catches trace
 * starts whose predecessor varies (e.g. procedure entries reached from
 * many call sites).
 */
class TracePredictor
{
  public:
    explicit TracePredictor(const TracePredictorConfig &config);

    /**
     * Predict the TID starting at next_pc following trace prev.
     * @return true and fills out on a confident prediction.
     */
    bool predict(const Tid &prev, Addr next_pc, Tid &out);

    /** Train with the TID that actually followed. */
    void train(const Tid &prev, Addr next_pc, const Tid &actual);

    /** Negative feedback after a trace abort: lose confidence in the
     * prediction made for this context so fetch falls back to the cold
     * pipeline instead of re-predicting the same wrong trace. */
    void mispredict(const Tid &prev, Addr next_pc);

    /** Lookups that produced a prediction. */
    Counter predictions() const { return nPredictions.value(); }

    /** Register the prediction counter into a stats-tree group. */
    void regStats(stats::Group &group) { group.add(&nPredictions, "predictions"); }

    const TracePredictorConfig &config() const { return cfg; }

    /** Serialize both components and the prediction counter. */
    void
    saveState(serial::Writer &out) const
    {
        auto save_component = [&](const std::vector<Entry> &comp) {
            out.u32(static_cast<std::uint32_t>(comp.size()));
            for (const Entry &entry : comp) {
                out.u64(entry.key);
                out.u64(entry.value.startPc);
                out.u64(entry.value.dirBits);
                out.u8(entry.value.numDirs);
                out.u32(entry.confidence);
                out.boolean(entry.valid);
            }
        };
        save_component(table);
        save_component(anchor);
        out.u64(nPredictions.value());
    }

    /** Restore checkpointed state (geometry must match). */
    void
    loadState(serial::Reader &in)
    {
        auto load_component = [&](std::vector<Entry> &comp) {
            if (in.u32() != comp.size())
                throw serial::Error(
                    "trace predictor: checkpoint geometry mismatch");
            for (Entry &entry : comp) {
                entry.key = in.u64();
                entry.value.startPc = in.u64();
                entry.value.dirBits = in.u64();
                entry.value.numDirs = in.u8();
                entry.confidence = in.u32();
                entry.valid = in.boolean();
            }
        };
        load_component(table);
        load_component(anchor);
        nPredictions.restore(in.u64());
    }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        Tid value;
        unsigned confidence = 0;
        bool valid = false;
    };

    std::uint64_t indexOf(const Tid &prev, Addr next_pc) const;
    std::uint64_t anchorIndexOf(Addr next_pc) const;

    /** Shared predict/train/mispredict logic on one entry. */
    bool predictEntry(const Entry &entry, Addr next_pc, Tid &out) const;
    void trainEntry(Entry &entry, const Tid &actual);

    TracePredictorConfig cfg;
    std::vector<Entry> table;       //!< contextual component
    std::vector<Entry> anchor;      //!< pc-only component
    unsigned maxConfidence;

    stats::Scalar nPredictions{"tp_predictions"};
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_PREDICTOR_HH
