/**
 * @file
 * The stored trace: a macro-instruction path plus its executable
 * (possibly optimized) uop sequence with atomic assert semantics.
 */

#ifndef PARROT_TRACECACHE_TRACE_HH
#define PARROT_TRACECACHE_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/inst.hh"
#include "tracecache/tid.hh"

namespace parrot::tracecache
{

/** Maximum uops in one trace frame (§2.2: capacity limitation). */
inline constexpr unsigned maxTraceUops = 64;

/** One step of the trace's macro-instruction path. */
struct TraceInstRef
{
    const isa::MacroInst *inst = nullptr;
    bool taken = false; //!< embedded direction for CTIs
};

/**
 * One executable uop of a trace with provenance back to the macro
 * instruction it came from (needed to recover dynamic memory addresses
 * from the committed stream and to account per-instruction work).
 */
struct TraceUop
{
    isa::Uop uop;
    std::int16_t instIdx = -1; //!< index into Trace::path
    std::int8_t uopIdx = -1;   //!< uop index within that instruction
};

/**
 * A constructed trace. The path records the original instructions and
 * directions; uops is what the hot pipeline actually executes —
 * internal conditional branches appear as assert uops.
 */
struct Trace
{
    Tid tid;
    std::vector<TraceInstRef> path;
    std::vector<TraceUop> uops;

    bool optimized = false;
    std::uint32_t execCount = 0;       //!< completed hot executions
    std::uint32_t abortCount = 0;      //!< assert-failure aborts
    std::uint16_t originalUopCount = 0; //!< before optimization
    std::uint16_t originalDepHeight = 0;
    std::uint16_t depHeight = 0;

    /** Number of macro-instructions on the path. */
    unsigned numInsts() const { return path.size(); }

    /** Number of executable uops. */
    unsigned numUops() const { return uops.size(); }

    /** Uop reduction achieved by optimization, in [0,1). */
    double
    uopReduction() const
    {
        if (originalUopCount == 0)
            return 0.0;
        return 1.0 - static_cast<double>(uops.size()) / originalUopCount;
    }
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_TRACE_HH
