/**
 * @file
 * Deterministic trace selection (§2.2 of the paper).
 *
 * The selector watches the committed instruction stream and carves it
 * into trace candidates using the paper's criteria:
 *   - capacity limit of 64 uops per frame;
 *   - traces terminate on CTIs (complete basic blocks), except when an
 *     extremely large block forces a capacity cut;
 *   - indirect jumps terminate traces; RETURNs terminate only when they
 *     exit the outermost procedure context entered within the trace
 *     (tracked by a context counter — the procedure-inlining effect);
 *   - backward-taken branches terminate traces (loop iteration cuts);
 *   - consecutive identical traces are joined up to capacity (the
 *     loop-unrolling effect).
 */

#ifndef PARROT_TRACECACHE_SELECTOR_HH
#define PARROT_TRACECACHE_SELECTOR_HH

#include <deque>
#include <functional>
#include <vector>

#include "common/serialize.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "workload/dyninst.hh"
#include "tracecache/trace.hh"

namespace parrot::tracecache
{

/** A selected (not yet constructed) trace candidate. */
struct TraceCandidate
{
    Tid tid;
    std::vector<TraceInstRef> path;
    unsigned uopCount = 0;
    unsigned unrollFactor = 1; //!< how many identical units were joined
};

/**
 * Streaming trace selector. Feed committed instructions in order; pop
 * completed candidates (emission lags by one candidate because of the
 * joining rule).
 */
class TraceSelector
{
  public:
    TraceSelector() = default;

    /** Observe one committed instruction. */
    void feed(const workload::DynInst &dyn);

    /** Pop the next completed candidate; false when none is ready. */
    bool pop(TraceCandidate &out);

    /** Flush any partially built state (e.g. at end of simulation). */
    void flush();

    /** Candidates emitted so far. */
    std::uint64_t emitted() const { return nEmitted.value(); }

    /** Register the candidate-emission counter into a stats group. */
    void regStats(stats::Group &group) { group.add(&nEmitted); }

    /** Serialize the in-progress selection state to a checkpoint.
     * Candidate paths are stored by pc (see tracecache::saveTrace). */
    void saveState(serial::Writer &out) const;

    /** Restore checkpointed state, re-resolving path pointers. */
    void loadState(
        serial::Reader &in,
        const std::function<const isa::MacroInst *(Addr)> &resolve);

  private:
    /** Close the in-progress trace and run the joining stage. */
    void closeCurrent();

    /** Emit the pending (possibly joined) candidate to the queue. */
    void emitPending();

    /** True when `unit` is a repetition of pending's base unit. */
    bool unitMatchesPending(const TraceCandidate &unit) const;

    TraceCandidate current;
    int contextCounter = 0;

    bool hasPending = false;
    TraceCandidate pending;
    unsigned pendingUnitInsts = 0; //!< path length of the base unit
    unsigned pendingUnitDirs = 0;
    unsigned pendingUnitUops = 0;

    std::deque<TraceCandidate> ready;
    stats::Scalar nEmitted{"candidates_emitted"};
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_SELECTOR_HH
