#include "tracecache/trace_cache.hh"

namespace parrot::tracecache
{

TraceCache::TraceCache(const TraceCacheConfig &config) : cfg(config)
{
    cfg.validate();
    table.resize(cfg.numEntries);
    numSets = cfg.numEntries / cfg.assoc;
}

TraceRef
TraceCache::lookup(const Tid &tid)
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid) {
            entry.lru = ++stamp;
            hitRatio.sample(true);
            return TraceRef{entry.trace.get(), mutationGen};
        }
    }
    hitRatio.sample(false);
    return TraceRef{};
}

const Trace *
TraceCache::peek(const Tid &tid) const
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    const Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid)
            return entry.trace.get();
    }
    return nullptr;
}

void
TraceCache::insert(Trace trace)
{
    const std::uint64_t key = trace.tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];

    // Replace an existing entry with the same TID (optimized rewrite).
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == trace.tid) {
            if (trace.optimized)
                nOptReplaced.add();
            // Replace the object, not its contents: the displaced
            // version parks in limbo so in-flight TraceRefs stay valid.
            retire(std::move(entry.trace));
            entry.trace = std::make_shared<Trace>(std::move(trace));
            entry.lru = ++stamp;
            nInsertions.add();
            return;
        }
    }

    Entry *victim = way;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (!entry.trace) {
            victim = &entry;
            break;
        }
        if (victim->trace && entry.lru < victim->lru)
            victim = &entry;
    }
    if (victim->trace)
        nEvictions.add();
    retire(std::move(victim->trace));
    victim->trace = std::make_shared<Trace>(std::move(trace));
    victim->key = key;
    victim->lru = ++stamp;
    nInsertions.add();
}

void
TraceCache::remove(const Tid &tid)
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid) {
            retire(std::move(entry.trace));
            entry.trace.reset();
            nEvictions.add();
            return;
        }
    }
}

unsigned
TraceCache::occupancy() const
{
    unsigned n = 0;
    for (const auto &entry : table)
        n += (entry.trace != nullptr);
    return n;
}

namespace
{

void
saveUop(const isa::Uop &uop, serial::Writer &out)
{
    out.u8(static_cast<std::uint8_t>(uop.kind));
    out.u8(uop.dst);
    out.u8(uop.src1);
    out.u8(uop.src2);
    out.i64(uop.imm);
    out.u8(uop.dst2);
    out.u8(uop.src1b);
    out.u8(uop.src2b);
    out.u8(static_cast<std::uint8_t>(uop.laneKind));
    out.u64(uop.assertTarget);
}

isa::Uop
loadUop(serial::Reader &in)
{
    isa::Uop uop;
    uop.kind = static_cast<isa::UopKind>(in.u8());
    uop.dst = in.u8();
    uop.src1 = in.u8();
    uop.src2 = in.u8();
    uop.imm = in.i64();
    uop.dst2 = in.u8();
    uop.src1b = in.u8();
    uop.src2b = in.u8();
    uop.laneKind = static_cast<isa::UopKind>(in.u8());
    uop.assertTarget = in.u64();
    return uop;
}

} // namespace

void
saveTrace(const Trace &trace, serial::Writer &out)
{
    out.u64(trace.tid.startPc);
    out.u64(trace.tid.dirBits);
    out.u8(trace.tid.numDirs);
    out.u32(static_cast<std::uint32_t>(trace.path.size()));
    for (const TraceInstRef &step : trace.path) {
        out.u64(step.inst->pc);
        out.boolean(step.taken);
    }
    out.u32(static_cast<std::uint32_t>(trace.uops.size()));
    for (const TraceUop &tu : trace.uops) {
        saveUop(tu.uop, out);
        out.u16(static_cast<std::uint16_t>(tu.instIdx));
        out.u8(static_cast<std::uint8_t>(tu.uopIdx));
    }
    out.boolean(trace.optimized);
    out.u32(trace.execCount);
    out.u32(trace.abortCount);
    out.u16(trace.originalUopCount);
    out.u16(trace.originalDepHeight);
    out.u16(trace.depHeight);
}

Trace
loadTrace(serial::Reader &in, const InstResolver &resolve)
{
    Trace trace;
    trace.tid.startPc = in.u64();
    trace.tid.dirBits = in.u64();
    trace.tid.numDirs = in.u8();
    const std::uint32_t path_len = in.u32();
    trace.path.reserve(path_len);
    for (std::uint32_t i = 0; i < path_len; ++i) {
        TraceInstRef step;
        const Addr pc = in.u64();
        step.inst = resolve(pc);
        if (!step.inst)
            throw serial::Error(
                "checkpointed trace path references unknown pc");
        step.taken = in.boolean();
        trace.path.push_back(step);
    }
    const std::uint32_t uop_count = in.u32();
    trace.uops.reserve(uop_count);
    for (std::uint32_t i = 0; i < uop_count; ++i) {
        TraceUop tu;
        tu.uop = loadUop(in);
        tu.instIdx = static_cast<std::int16_t>(in.u16());
        tu.uopIdx = static_cast<std::int8_t>(in.u8());
        trace.uops.push_back(tu);
    }
    trace.optimized = in.boolean();
    trace.execCount = in.u32();
    trace.abortCount = in.u32();
    trace.originalUopCount = in.u16();
    trace.originalDepHeight = in.u16();
    trace.depHeight = in.u16();
    return trace;
}

void
TraceCache::saveState(serial::Writer &out) const
{
    out.u32(static_cast<std::uint32_t>(table.size()));
    for (const Entry &entry : table) {
        out.boolean(entry.trace != nullptr);
        if (entry.trace) {
            saveTrace(*entry.trace, out);
            out.u64(entry.lru);
        }
    }
    out.u32(static_cast<std::uint32_t>(limbo.size()));
    for (const auto &owner : limbo)
        saveTrace(*owner, out);
    out.u64(stamp);
    out.u64(mutationGen);
    out.u64(hitRatio.numerator());
    out.u64(hitRatio.denominator());
    out.u64(nInsertions.value());
    out.u64(nEvictions.value());
    out.u64(nOptReplaced.value());
}

void
TraceCache::loadState(serial::Reader &in, const InstResolver &resolve)
{
    if (in.u32() != table.size())
        throw serial::Error("trace cache: checkpoint geometry mismatch");
    for (Entry &entry : table) {
        entry.trace.reset();
        entry.key = 0;
        entry.lru = 0;
        if (in.boolean()) {
            entry.trace =
                std::make_shared<Trace>(loadTrace(in, resolve));
            entry.key = entry.trace->tid.hash();
            entry.lru = in.u64();
        }
    }
    limbo.clear();
    const std::uint32_t limbo_len = in.u32();
    for (std::uint32_t i = 0; i < limbo_len; ++i)
        limbo.push_back(std::make_shared<Trace>(loadTrace(in, resolve)));
    stamp = in.u64();
    mutationGen = in.u64();
    const Counter numer = in.u64();
    hitRatio.restore(numer, in.u64());
    nInsertions.restore(in.u64());
    nEvictions.restore(in.u64());
    nOptReplaced.restore(in.u64());
}

int
TraceCache::slotOf(const Trace *trace) const
{
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].trace.get() == trace)
            return static_cast<int>(i);
    }
    return -1;
}

int
TraceCache::limboIndexOf(const Trace *trace) const
{
    for (std::size_t i = 0; i < limbo.size(); ++i) {
        if (limbo[i].get() == trace)
            return static_cast<int>(i);
    }
    return -1;
}

TraceRef
TraceCache::refAtSlot(std::size_t idx)
{
    if (idx >= table.size() || !table[idx].trace)
        throw serial::Error("trace cache: checkpoint slot out of range");
    return TraceRef{table[idx].trace.get(), mutationGen};
}

TraceRef
TraceCache::refInLimbo(std::size_t idx)
{
    if (idx >= limbo.size())
        throw serial::Error("trace cache: checkpoint limbo out of range");
    return TraceRef{limbo[idx].get(), mutationGen};
}

} // namespace parrot::tracecache
