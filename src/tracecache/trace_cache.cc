#include "tracecache/trace_cache.hh"

namespace parrot::tracecache
{

TraceCache::TraceCache(const TraceCacheConfig &config) : cfg(config)
{
    cfg.validate();
    table.resize(cfg.numEntries);
    numSets = cfg.numEntries / cfg.assoc;
}

TraceRef
TraceCache::lookup(const Tid &tid)
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid) {
            entry.lru = ++stamp;
            hitRatio.sample(true);
            return TraceRef{entry.trace.get(), mutationGen};
        }
    }
    hitRatio.sample(false);
    return TraceRef{};
}

const Trace *
TraceCache::peek(const Tid &tid) const
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    const Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        const Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid)
            return entry.trace.get();
    }
    return nullptr;
}

void
TraceCache::insert(Trace trace)
{
    const std::uint64_t key = trace.tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];

    // Replace an existing entry with the same TID (optimized rewrite).
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == trace.tid) {
            if (trace.optimized)
                nOptReplaced.add();
            // Replace the object, not its contents: the displaced
            // version parks in limbo so in-flight TraceRefs stay valid.
            retire(std::move(entry.trace));
            entry.trace = std::make_shared<Trace>(std::move(trace));
            entry.lru = ++stamp;
            nInsertions.add();
            return;
        }
    }

    Entry *victim = way;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (!entry.trace) {
            victim = &entry;
            break;
        }
        if (victim->trace && entry.lru < victim->lru)
            victim = &entry;
    }
    if (victim->trace)
        nEvictions.add();
    retire(std::move(victim->trace));
    victim->trace = std::make_shared<Trace>(std::move(trace));
    victim->key = key;
    victim->lru = ++stamp;
    nInsertions.add();
}

void
TraceCache::remove(const Tid &tid)
{
    const std::uint64_t key = tid.hash();
    const std::uint64_t set = key & (numSets - 1);
    Entry *way = &table[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Entry &entry = way[w];
        if (entry.trace && entry.key == key && entry.trace->tid == tid) {
            retire(std::move(entry.trace));
            entry.trace.reset();
            nEvictions.add();
            return;
        }
    }
}

unsigned
TraceCache::occupancy() const
{
    unsigned n = 0;
    for (const auto &entry : table)
        n += (entry.trace != nullptr);
    return n;
}

} // namespace parrot::tracecache
