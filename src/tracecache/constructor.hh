/**
 * @file
 * Trace construction: turn a selected candidate (macro-instruction path
 * with directions) into an executable atomic trace.
 *
 * Internal conditional branches become assert uops carrying the
 * embedded direction (§2.3: atomicity is "manifested by assert
 * operations"); all other uops are copied with provenance so dynamic
 * memory addresses can be recovered from the committed stream.
 */

#ifndef PARROT_TRACECACHE_CONSTRUCTOR_HH
#define PARROT_TRACECACHE_CONSTRUCTOR_HH

#include "tracecache/selector.hh"
#include "tracecache/trace.hh"

namespace parrot::tracecache
{

/** Build an executable (unoptimized) trace from a candidate. */
Trace constructTrace(const TraceCandidate &candidate);

/**
 * Length of the longest register-dependence chain through the uops,
 * weighted by execution latency. Used for the paper's
 * dependence-reduction statistics (Figure 4.9).
 */
unsigned computeDepHeight(const std::vector<TraceUop> &uops);

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_CONSTRUCTOR_HH
