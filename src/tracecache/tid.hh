/**
 * @file
 * Trace identifiers (TIDs).
 *
 * Per §2.2 of the paper, the deterministic selection criteria let a
 * unique trace be identified by its starting address plus the sequence
 * of taken/not-taken directions of its internal conditional branches
 * (the only indirect CTI inside a trace is an inlined RETURN, whose
 * target is implicit in the trace context).
 */

#ifndef PARROT_TRACECACHE_TID_HH
#define PARROT_TRACECACHE_TID_HH

#include <cstdint>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace parrot::tracecache
{

/** Compact trace identifier: start address + branch-direction string. */
struct Tid
{
    Addr startPc = 0;
    std::uint64_t dirBits = 0; //!< LSB-first conditional directions
    std::uint8_t numDirs = 0;  //!< number of valid direction bits

    bool
    operator==(const Tid &other) const
    {
        return startPc == other.startPc && dirBits == other.dirBits &&
               numDirs == other.numDirs;
    }

    bool operator!=(const Tid &other) const { return !(*this == other); }

    /** True for the default-constructed "no trace" value. */
    bool valid() const { return startPc != 0; }

    /** Well-distributed hash for indexing filter/predictor tables. */
    std::uint64_t
    hash() const
    {
        return hashCombine(hashCombine(mix64(startPc), dirBits), numDirs);
    }

    /** Append one direction bit (caller enforces the 64-bit cap). */
    void
    pushDir(bool taken)
    {
        dirBits |= (taken ? 1ull : 0ull) << numDirs;
        ++numDirs;
    }
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_TID_HH
