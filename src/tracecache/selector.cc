#include "tracecache/selector.hh"

#include "common/logging.hh"

namespace parrot::tracecache
{

void
TraceSelector::feed(const workload::DynInst &dyn)
{
    const isa::MacroInst &inst = *dyn.inst;
    const unsigned n_uops = inst.uops.size();

    // Capacity cut: close before adding when the frame would overflow
    // (this is the "extremely large basic block" escape hatch plus the
    // normal frame limit).
    if (!current.path.empty() &&
        (current.uopCount + n_uops > maxTraceUops ||
         (inst.isCondBranch() && current.tid.numDirs >= 64))) {
        closeCurrent();
    }

    if (current.path.empty()) {
        current.tid.startPc = inst.pc;
        contextCounter = 0;
    }

    current.path.push_back(TraceInstRef{&inst, dyn.taken});
    current.uopCount += n_uops;
    if (inst.isCondBranch())
        current.tid.pushDir(dyn.taken);

    bool terminate = false;
    switch (inst.cti) {
      case isa::CtiType::None:
        break;
      case isa::CtiType::CondBranch:
        // Backward-taken branches cut traces at iteration boundaries.
        if (dyn.taken && inst.takenTarget <= inst.pc)
            terminate = true;
        break;
      case isa::CtiType::Jump:
        break; // traces extend over unconditional direct jumps
      case isa::CtiType::JumpInd:
        terminate = true; // indirect jumps always terminate
        break;
      case isa::CtiType::Call:
        ++contextCounter;
        break;
      case isa::CtiType::Return:
        if (contextCounter > 0) {
            --contextCounter; // inlined return: target is implicit
        } else {
            terminate = true; // exits the outermost context
        }
        break;
    }

    if (terminate)
        closeCurrent();
}

void
TraceSelector::closeCurrent()
{
    if (current.path.empty())
        return;

    TraceCandidate unit = std::move(current);
    current = TraceCandidate{};

    if (hasPending) {
        const bool fits =
            pending.uopCount + unit.uopCount <= maxTraceUops &&
            pending.tid.numDirs + unit.tid.numDirs <= 64;
        if (fits && unitMatchesPending(unit)) {
            // Join: append another identical iteration (unrolling).
            for (const auto &ref : unit.path)
                pending.path.push_back(ref);
            for (unsigned d = 0; d < unit.tid.numDirs; ++d)
                pending.tid.pushDir((unit.tid.dirBits >> d) & 1);
            pending.uopCount += unit.uopCount;
            ++pending.unrollFactor;
            return;
        }
        emitPending();
    }

    pending = std::move(unit);
    pendingUnitInsts = pending.path.size();
    pendingUnitDirs = pending.tid.numDirs;
    pendingUnitUops = pending.uopCount;
    hasPending = true;
}

bool
TraceSelector::unitMatchesPending(const TraceCandidate &unit) const
{
    if (unit.path.size() != pendingUnitInsts ||
        unit.tid.numDirs != pendingUnitDirs ||
        unit.uopCount != pendingUnitUops ||
        unit.tid.startPc != pending.tid.startPc) {
        return false;
    }
    for (unsigned i = 0; i < pendingUnitInsts; ++i) {
        if (unit.path[i].inst != pending.path[i].inst ||
            unit.path[i].taken != pending.path[i].taken) {
            return false;
        }
    }
    return true;
}

void
TraceSelector::emitPending()
{
    if (!hasPending)
        return;
    ready.push_back(std::move(pending));
    hasPending = false;
    nEmitted.add();
}

bool
TraceSelector::pop(TraceCandidate &out)
{
    if (ready.empty())
        return false;
    out = std::move(ready.front());
    ready.pop_front();
    return true;
}

void
TraceSelector::flush()
{
    closeCurrent();
    emitPending();
    current = TraceCandidate{};
    contextCounter = 0;
}

namespace
{

void
saveCandidate(const TraceCandidate &cand, serial::Writer &out)
{
    out.u64(cand.tid.startPc);
    out.u64(cand.tid.dirBits);
    out.u8(cand.tid.numDirs);
    out.u32(static_cast<std::uint32_t>(cand.path.size()));
    for (const TraceInstRef &step : cand.path) {
        out.u64(step.inst->pc);
        out.boolean(step.taken);
    }
    out.u32(cand.uopCount);
    out.u32(cand.unrollFactor);
}

TraceCandidate
loadCandidate(serial::Reader &in,
              const std::function<const isa::MacroInst *(Addr)> &resolve)
{
    TraceCandidate cand;
    cand.tid.startPc = in.u64();
    cand.tid.dirBits = in.u64();
    cand.tid.numDirs = in.u8();
    const std::uint32_t path_len = in.u32();
    cand.path.reserve(path_len);
    for (std::uint32_t i = 0; i < path_len; ++i) {
        TraceInstRef step;
        const Addr pc = in.u64();
        step.inst = resolve(pc);
        if (!step.inst)
            throw serial::Error(
                "checkpointed candidate references unknown pc");
        step.taken = in.boolean();
        cand.path.push_back(step);
    }
    cand.uopCount = in.u32();
    cand.unrollFactor = in.u32();
    return cand;
}

} // namespace

void
TraceSelector::saveState(serial::Writer &out) const
{
    saveCandidate(current, out);
    out.i64(contextCounter);
    out.boolean(hasPending);
    if (hasPending)
        saveCandidate(pending, out);
    out.u32(pendingUnitInsts);
    out.u32(pendingUnitDirs);
    out.u32(pendingUnitUops);
    out.u32(static_cast<std::uint32_t>(ready.size()));
    for (const TraceCandidate &cand : ready)
        saveCandidate(cand, out);
    out.u64(nEmitted.value());
}

void
TraceSelector::loadState(
    serial::Reader &in,
    const std::function<const isa::MacroInst *(Addr)> &resolve)
{
    current = loadCandidate(in, resolve);
    contextCounter = static_cast<int>(in.i64());
    hasPending = in.boolean();
    pending = hasPending ? loadCandidate(in, resolve) : TraceCandidate{};
    pendingUnitInsts = in.u32();
    pendingUnitDirs = in.u32();
    pendingUnitUops = in.u32();
    ready.clear();
    const std::uint32_t n_ready = in.u32();
    for (std::uint32_t i = 0; i < n_ready; ++i)
        ready.push_back(loadCandidate(in, resolve));
    nEmitted.restore(in.u64());
}

} // namespace parrot::tracecache
