/**
 * @file
 * Counter-cache filters: the gradual promotion machinery of PARROT.
 *
 * Both the hot filter (cold TID -> trace-cache insertion) and the
 * blazing filter (cached trace -> optimizer) are small set-associative
 * caches of saturating access counters keyed by TID (§2.3).
 */

#ifndef PARROT_TRACECACHE_FILTER_HH
#define PARROT_TRACECACHE_FILTER_HH

#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "tracecache/tid.hh"

namespace parrot::tracecache
{

/** Configuration of one counter filter. */
struct FilterConfig
{
    unsigned entries = 256;
    unsigned assoc = 4;
    unsigned threshold = 16; //!< promotion count

    void
    validate() const
    {
        if (entries == 0 || assoc == 0 || entries % assoc != 0)
            PARROT_FATAL("filter: entries must be a multiple of assoc");
        if (!isPowerOfTwo(entries / assoc))
            PARROT_FATAL("filter: set count must be a power of two");
        if (threshold < 1)
            PARROT_FATAL("filter: threshold must be >= 1");
    }
};

/**
 * Set-associative counter cache with LRU replacement.
 */
class CounterFilter
{
  public:
    explicit CounterFilter(const FilterConfig &config) : cfg(config)
    {
        cfg.validate();
        table.resize(cfg.entries);
        numSets = cfg.entries / cfg.assoc;
    }

    /**
     * Record one occurrence of tid.
     * @return the counter value after the increment (>= 1). A missing
     *         TID allocates an entry with count 1, evicting LRU.
     */
    unsigned
    bump(const Tid &tid)
    {
        nBumps.add();
        const std::uint64_t key = tid.hash();
        const std::uint64_t set = key & (numSets - 1);
        Entry *way = &table[set * cfg.assoc];
        Entry *victim = way;
        for (unsigned w = 0; w < cfg.assoc; ++w) {
            Entry &entry = way[w];
            if (entry.valid && entry.key == key) {
                entry.lru = ++stamp;
                if (entry.count < ~0u)
                    ++entry.count;
                return entry.count;
            }
            if (!entry.valid)
                victim = &entry;
            else if (victim->valid && entry.lru < victim->lru)
                victim = &entry;
        }
        victim->valid = true;
        victim->key = key;
        victim->count = 1;
        victim->lru = ++stamp;
        return 1;
    }

    /** Current counter value (0 when absent). No LRU update. */
    unsigned
    read(const Tid &tid) const
    {
        const std::uint64_t key = tid.hash();
        const std::uint64_t set = key & (numSets - 1);
        const Entry *way = &table[set * cfg.assoc];
        for (unsigned w = 0; w < cfg.assoc; ++w) {
            if (way[w].valid && way[w].key == key)
                return way[w].count;
        }
        return 0;
    }

    /** True when the count has reached the promotion threshold. */
    bool promoted(unsigned count) const { return count >= cfg.threshold; }

    /** Reset the count for tid (after a promotion is acted upon). */
    void
    reset(const Tid &tid)
    {
        const std::uint64_t key = tid.hash();
        const std::uint64_t set = key & (numSets - 1);
        Entry *way = &table[set * cfg.assoc];
        for (unsigned w = 0; w < cfg.assoc; ++w) {
            if (way[w].valid && way[w].key == key) {
                way[w].count = 0;
                nResets.add();
                return;
            }
        }
    }

    /** Register filter-pressure counters into a stats-tree group. A
     * reset follows each acted-upon promotion, so `resets` counts
     * promotions that actually fired. */
    void
    regStats(stats::Group &group)
    {
        group.add(&nBumps);
        group.add(&nResets);
    }

    const FilterConfig &config() const { return cfg; }

    /** Serialize counters and table contents to a checkpoint. */
    void
    saveState(serial::Writer &out) const
    {
        out.u32(static_cast<std::uint32_t>(table.size()));
        for (const Entry &entry : table) {
            out.u64(entry.key);
            out.u32(entry.count);
            out.u64(entry.lru);
            out.boolean(entry.valid);
        }
        out.u64(stamp);
        out.u64(nBumps.value());
        out.u64(nResets.value());
    }

    /** Restore checkpointed state (geometry must match). */
    void
    loadState(serial::Reader &in)
    {
        if (in.u32() != table.size())
            throw serial::Error("filter: checkpoint geometry mismatch");
        for (Entry &entry : table) {
            entry.key = in.u64();
            entry.count = in.u32();
            entry.lru = in.u64();
            entry.valid = in.boolean();
        }
        stamp = in.u64();
        nBumps.restore(in.u64());
        nResets.restore(in.u64());
    }

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        unsigned count = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    FilterConfig cfg;
    std::vector<Entry> table;
    std::uint64_t numSets = 1;
    std::uint64_t stamp = 0;

    stats::Scalar nBumps{"bumps"};
    stats::Scalar nResets{"resets"};
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_FILTER_HH
