#include "tracecache/predictor.hh"

namespace parrot::tracecache
{

TracePredictor::TracePredictor(const TracePredictorConfig &config)
    : cfg(config)
{
    cfg.validate();
    table.resize(cfg.numEntries);
    anchor.resize(cfg.numEntries / 2);
    maxConfidence = (1u << cfg.counterBits) - 1;
}

std::uint64_t
TracePredictor::anchorIndexOf(Addr next_pc) const
{
    return mix64(next_pc) & (anchor.size() - 1);
}

bool
TracePredictor::predictEntry(const Entry &entry, Addr next_pc,
                             Tid &out) const
{
    if (!entry.valid || entry.value.startPc != next_pc)
        return false;
    if (entry.confidence < maxConfidence)
        return false; // predict only at full confidence
    out = entry.value;
    return true;
}

void
TracePredictor::trainEntry(Entry &entry, const Tid &actual)
{
    if (entry.valid && entry.value == actual) {
        if (entry.confidence < maxConfidence)
            ++entry.confidence;
        return;
    }
    if (entry.valid && entry.confidence > 0) {
        --entry.confidence; // hysteresis before displacement
        return;
    }
    entry.key = 0;
    entry.value = actual;
    // Start well below the prediction threshold: a fresh path must
    // recur several times before it is trusted, so alternating paths
    // never ping-pong the hot pipeline into repeated aborts.
    entry.confidence = maxConfidence / 2;
    entry.valid = true;
}

std::uint64_t
TracePredictor::indexOf(const Tid &prev, Addr next_pc) const
{
    // Precise context: the previous trace's full identity (start
    // address plus direction string) distinguishes e.g. the phases of
    // pattern-following paths; the anchor component (pc-only) catches
    // everything this fragments.
    std::uint64_t key = hashCombine(prev.valid() ? prev.hash() : 0,
                                    mix64(next_pc));
    return key & (cfg.numEntries - 1);
}

bool
TracePredictor::predict(const Tid &prev, Addr next_pc, Tid &out)
{
    // The contextual component has priority; the anchor component
    // catches targets whose predecessor varies.
    if (predictEntry(table[indexOf(prev, next_pc)], next_pc, out) ||
        predictEntry(anchor[anchorIndexOf(next_pc)], next_pc, out)) {
        nPredictions.add();
        return true;
    }
    return false;
}

void
TracePredictor::train(const Tid &prev, Addr next_pc, const Tid &actual)
{
    trainEntry(table[indexOf(prev, next_pc)], actual);
    trainEntry(anchor[anchorIndexOf(next_pc)], actual);
}

void
TracePredictor::mispredict(const Tid &prev, Addr next_pc)
{
    // Strong negative: an abort is expensive, so a failing path must
    // re-earn confidence over several occurrences. Paths with inherent
    // direction variance therefore rarely run hot — the selectivity at
    // the heart of the PARROT concept.
    for (Entry *entry : {&table[indexOf(prev, next_pc)],
                         &anchor[anchorIndexOf(next_pc)]}) {
        if (!entry->valid)
            continue;
        entry->confidence = entry->confidence > 3
            ? entry->confidence - 3 : 0;
    }
}

} // namespace parrot::tracecache
