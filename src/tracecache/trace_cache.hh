/**
 * @file
 * The decoded, optimized trace cache: a set-associative store of trace
 * frames keyed by TID.
 */

#ifndef PARROT_TRACECACHE_TRACE_CACHE_HH
#define PARROT_TRACECACHE_TRACE_CACHE_HH

#include <memory>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "tracecache/trace.hh"

namespace parrot::tracecache
{

/** Trace-cache geometry (each entry holds one <=64-uop frame). */
struct TraceCacheConfig
{
    unsigned numEntries = 512;
    unsigned assoc = 4;

    void
    validate() const
    {
        if (numEntries == 0 || assoc == 0 || numEntries % assoc != 0)
            PARROT_FATAL("trace cache: entries must be multiple of assoc");
        if (!isPowerOfTwo(numEntries / assoc))
            PARROT_FATAL("trace cache: set count must be a power of two");
    }
};

/**
 * Set-associative trace storage with LRU replacement.
 */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &config);

    /**
     * Look up a trace by TID; updates LRU on hit.
     * @return the stored trace or nullptr. The shared pointer keeps an
     *         in-flight trace alive across evictions and rewrites.
     */
    std::shared_ptr<Trace> lookup(const Tid &tid);

    /** Probe without LRU update. */
    const Trace *peek(const Tid &tid) const;

    /** Insert (or replace) a trace; evicts the set's LRU entry. */
    void insert(Trace trace);

    /** Remove a trace (e.g. one that keeps aborting). No-op on miss. */
    void remove(const Tid &tid);

    /** Number of currently stored traces. */
    unsigned occupancy() const;

    /** @name Statistics. @{ */
    Counter lookups() const { return hitRatio.denominator(); }
    Counter hits() const { return hitRatio.numerator(); }
    Counter insertions() const { return nInsertions.value(); }
    Counter evictions() const { return nEvictions.value(); }
    Counter optimizedReplacements() const { return nOptReplaced.value(); }
    /** @} */

    /** Register hit ratio and churn counters into a stats-tree group. */
    void
    regStats(stats::Group &group)
    {
        group.add(&hitRatio, "hit_ratio");
        group.add(&nInsertions, "insertions");
        group.add(&nEvictions, "evictions");
        group.add(&nOptReplaced, "opt_replacements");
    }

    const TraceCacheConfig &config() const { return cfg; }

    /** Visit every stored trace (stats/debug). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &entry : table) {
            if (entry.trace)
                fn(*entry.trace);
        }
    }

  private:
    struct Entry
    {
        std::shared_ptr<Trace> trace;
        std::uint64_t key = 0;
        std::uint64_t lru = 0;
    };

    TraceCacheConfig cfg;
    std::vector<Entry> table;
    std::uint64_t numSets = 1;
    std::uint64_t stamp = 0;

    stats::Ratio hitRatio{"tc_hits"};
    stats::Scalar nInsertions{"tc_insertions"};
    stats::Scalar nEvictions{"tc_evictions"};
    stats::Scalar nOptReplaced{"tc_opt_replacements"};
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_TRACE_CACHE_HH
