/**
 * @file
 * The decoded, optimized trace cache: a set-associative store of trace
 * frames keyed by TID.
 */

#ifndef PARROT_TRACECACHE_TRACE_CACHE_HH
#define PARROT_TRACECACHE_TRACE_CACHE_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "stats/group.hh"
#include "stats/stats.hh"
#include "tracecache/trace.hh"

namespace parrot::tracecache
{

/** Trace-cache geometry (each entry holds one <=64-uop frame). */
struct TraceCacheConfig
{
    unsigned numEntries = 512;
    unsigned assoc = 4;

    /** Relative clock-tree size of the fetch port for idle-clock power
     * accounting (power::PowerGate): wide decoded-uop read path, so a
     * larger cache clocks a bigger array while idle in cold mode. */
    unsigned portClockWeight() const { return numEntries >= 2048 ? 4 : 3; }

    void
    validate() const
    {
        if (numEntries == 0 || assoc == 0 || numEntries % assoc != 0)
            PARROT_FATAL("trace cache: entries must be multiple of assoc");
        if (!isPowerOfTwo(numEntries / assoc))
            PARROT_FATAL("trace cache: set count must be a power of two");
    }
};

/**
 * A non-owning reference to a cached trace, handed out by the
 * fetch-path lookup(). Copying is two machine words: no heap traffic
 * and no atomic refcounting. The target stays valid across insert /
 * remove / eviction because the cache parks displaced traces on a
 * limbo list until the owning simulator calls reclaimLimbo() at a
 * safe point (cold mode, no trace in flight) — see DESIGN.md §11.
 *
 * `gen` snapshots the cache's mutation generation at lookup time; a
 * holder can compare it with generation() to detect that the cache
 * changed underneath it (debug/assert use only).
 */
struct TraceRef
{
    Trace *ptr = nullptr;
    std::uint64_t gen = 0;

    explicit operator bool() const { return ptr != nullptr; }
    Trace *operator->() const { return ptr; }
    Trace &operator*() const { return *ptr; }
    Trace *get() const { return ptr; }

    bool operator==(std::nullptr_t) const { return ptr == nullptr; }
};

static_assert(std::is_trivially_copyable_v<TraceRef>,
              "fetch-path lookups must stay refcount-free");

/** Resolves a static code address back to its macro-instruction when
 * deserializing trace paths (Program::instAt or the replay image). */
using InstResolver = std::function<const isa::MacroInst *(Addr)>;

/** Serialize one trace (path instructions stored by pc). */
void saveTrace(const Trace &trace, serial::Writer &out);

/** Deserialize one trace, re-resolving path pointers via `resolve`. */
Trace loadTrace(serial::Reader &in, const InstResolver &resolve);

/**
 * Set-associative trace storage with LRU replacement.
 */
class TraceCache
{
  public:
    explicit TraceCache(const TraceCacheConfig &config);

    /**
     * Look up a trace by TID; updates LRU on hit.
     * @return a non-owning reference (null on miss). Performs no heap
     *         allocation and no refcounting; validity is guaranteed
     *         until the next reclaimLimbo().
     */
    TraceRef lookup(const Tid &tid);

    /** Probe without LRU update. */
    const Trace *peek(const Tid &tid) const;

    /** Insert (or replace) a trace; evicts the set's LRU entry. */
    void insert(Trace trace);

    /** Remove a trace (e.g. one that keeps aborting). No-op on miss. */
    void remove(const Tid &tid);

    /**
     * Free every trace displaced by insert/remove/eviction since the
     * last call. Outstanding TraceRefs are invalidated; the owning
     * simulator calls this only when no trace is being executed.
     */
    void reclaimLimbo() { limbo.clear(); }

    /** Displaced traces awaiting reclamation (tests/debug). */
    std::size_t limboSize() const { return limbo.size(); }

    /** Mutation generation: bumped by insert/remove/eviction. */
    std::uint64_t generation() const { return mutationGen; }

    /** Number of currently stored traces. */
    unsigned occupancy() const;

    /** @name Statistics. @{ */
    Counter lookups() const { return hitRatio.denominator(); }
    Counter hits() const { return hitRatio.numerator(); }
    Counter insertions() const { return nInsertions.value(); }
    Counter evictions() const { return nEvictions.value(); }
    Counter optimizedReplacements() const { return nOptReplaced.value(); }
    /** @} */

    /** Register hit ratio and churn counters into a stats-tree group. */
    void
    regStats(stats::Group &group)
    {
        group.add(&hitRatio, "hit_ratio");
        group.add(&nInsertions, "insertions");
        group.add(&nEvictions, "evictions");
        group.add(&nOptReplaced, "opt_replacements");
    }

    const TraceCacheConfig &config() const { return cfg; }

    /** Serialize contents (incl. the limbo list) and counters. */
    void saveState(serial::Writer &out) const;

    /** Restore checkpointed contents (geometry must match). */
    void loadState(serial::Reader &in, const InstResolver &resolve);

    /** @name Active-trace relinking for checkpoints.
     * A checkpointed simulator may hold a TraceRef into this cache (or
     * its limbo list); these translate that reference to and from a
     * stable (slot, limbo-index) coordinate. @{ */
    /** Table slot holding `trace`, or -1 when not a table resident. */
    int slotOf(const Trace *trace) const;
    /** Limbo index holding `trace`, or -1. */
    int limboIndexOf(const Trace *trace) const;
    /** Re-materialize a reference to the trace in table slot `idx`. */
    TraceRef refAtSlot(std::size_t idx);
    /** Re-materialize a reference to limbo entry `idx`. */
    TraceRef refInLimbo(std::size_t idx);
    /** @} */

    /** Visit every stored trace (stats/debug). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &entry : table) {
            if (entry.trace)
                fn(*entry.trace);
        }
    }

  private:
    struct Entry
    {
        std::shared_ptr<Trace> trace;
        std::uint64_t key = 0;
        std::uint64_t lru = 0;
    };

    /** Park a displaced owner on the limbo list (keeps in-flight
     * TraceRefs valid) and note the mutation. */
    void
    retire(std::shared_ptr<Trace> &&owner)
    {
        ++mutationGen;
        if (owner)
            limbo.push_back(std::move(owner));
    }

    TraceCacheConfig cfg;
    std::vector<Entry> table;
    std::uint64_t numSets = 1;
    std::uint64_t stamp = 0;
    std::uint64_t mutationGen = 0;
    std::vector<std::shared_ptr<Trace>> limbo;

    stats::Ratio hitRatio{"tc_hits"};
    stats::Scalar nInsertions{"tc_insertions"};
    stats::Scalar nEvictions{"tc_evictions"};
    stats::Scalar nOptReplaced{"tc_opt_replacements"};
};

} // namespace parrot::tracecache

#endif // PARROT_TRACECACHE_TRACE_CACHE_HH
