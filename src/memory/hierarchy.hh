/**
 * @file
 * The three-level memory hierarchy (L1I, L1D, shared L2, main memory)
 * used by every PARROT machine model.
 */

#ifndef PARROT_MEMORY_HIERARCHY_HH
#define PARROT_MEMORY_HIERARCHY_HH

#include <memory>

#include "memory/cache.hh"

namespace parrot::memory
{

/** Configuration of the whole hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 4, 64, 2};
    CacheConfig l1d{"l1d", 32 * 1024, 8, 64, 3};
    CacheConfig l2{"l2", 1024 * 1024, 8, 64, 10};
    unsigned memLatency = 100; //!< cycles to main memory
    /** Next-line prefetch into L1D on demand misses (off by default:
     * the paper-era baselines carry no data prefetcher). */
    bool l1dNextLinePrefetch = false;
    /** Next-line prefetch into L1I on demand misses. */
    bool l1iNextLinePrefetch = false;

    void
    validate() const
    {
        l1i.validate();
        l1d.validate();
        l2.validate();
        if (memLatency < 1)
            PARROT_FATAL("memLatency must be >= 1");
    }

    /** L2 capacity in megabytes (for the leakage model). */
    double l2MegaBytes() const { return l2.sizeBytes / (1024.0 * 1024.0); }
};

/** Outcome of a hierarchy access: total latency plus where it hit. */
struct HierarchyAccess
{
    unsigned latency = 0;
    bool l1Hit = false;
    bool l2Hit = false; //!< meaningful only when !l1Hit
};

/**
 * L1I + L1D backed by a shared L2 and a flat-latency main memory.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /** Instruction fetch of the line containing addr. */
    HierarchyAccess fetchInst(Addr addr);

    /** Data access (read or write) of the line containing addr. */
    HierarchyAccess accessData(Addr addr, bool write);

    /** Warm-state instruction fetch (sampled fast-forward): keeps
     * tags/LRU hot at every level without moving demand counters. */
    void warmFetchInst(Addr addr);

    /** Warm-state data access: tags/LRU only, no demand counters. */
    void warmAccessData(Addr addr, bool write);

    const Cache &l1i() const { return *l1iCache; }
    const Cache &l1d() const { return *l1dCache; }
    const Cache &l2() const { return *l2Cache; }
    const HierarchyConfig &config() const { return cfg; }

    /** Accesses that had to go to main memory. */
    Counter memAccesses() const { return memCount.value(); }

    /** Prefetch fills issued (L1I + L1D). */
    Counter prefetches() const { return prefetchCount.value(); }

    /** Reset statistics on every level. */
    void resetStats();

    /** Register per-level subgroups (l1i/l1d/l2) plus hierarchy-wide
     * counters into a stats-tree group. */
    void regStats(stats::Group &group);

    /** Serialize all three levels plus the hierarchy counters. */
    void saveState(serial::Writer &out) const;

    /** Restore checkpointed state (geometry must match). */
    void loadState(serial::Reader &in);

  private:
    /** Handle an L1 miss through L2/memory; returns added latency. */
    unsigned missToL2(Addr addr, bool write, HierarchyAccess &out);

    HierarchyConfig cfg;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    std::unique_ptr<Cache> l2Cache;
    stats::Scalar memCount{"mem_accesses"};
    stats::Scalar prefetchCount{"prefetches"};
};

} // namespace parrot::memory

#endif // PARROT_MEMORY_HIERARCHY_HH
