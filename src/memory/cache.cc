#include "memory/cache.hh"

namespace parrot::memory
{

void
CacheConfig::validate() const
{
    if (!isPowerOfTwo(lineBytes) || lineBytes < 8)
        PARROT_FATAL("cache %s: line size must be a power of two >= 8",
                     name.c_str());
    if (assoc < 1)
        PARROT_FATAL("cache %s: associativity must be >= 1", name.c_str());
    if (sizeBytes % (static_cast<std::uint64_t>(assoc) * lineBytes) != 0)
        PARROT_FATAL("cache %s: size not divisible by assoc*line",
                     name.c_str());
    if (!isPowerOfTwo(numSets()))
        PARROT_FATAL("cache %s: set count must be a power of two",
                     name.c_str());
    if (hitLatency < 1)
        PARROT_FATAL("cache %s: hit latency must be >= 1", name.c_str());
}

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    cfg.validate();
    lines.resize(cfg.numSets() * cfg.assoc);
    lineShift = floorLog2(cfg.lineBytes);
    setMask = cfg.numSets() - 1;
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & setMask;
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

AccessResult
Cache::access(Addr addr, bool write)
{
    AccessResult result;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *way = &lines[set * cfg.assoc];

    Line *victim = way;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &line = way[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp;
            line.dirty |= write;
            hits.add();
            result.hit = true;
            return result;
        }
        // Track the LRU (or first invalid) way as the victim.
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    misses.add();
    if (victim->valid && victim->dirty) {
        writebacks.add();
        result.writeback = true;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lruStamp = ++stamp;
    return result;
}

AccessResult
Cache::warmAccess(Addr addr, bool write)
{
    AccessResult result;
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *way = &lines[set * cfg.assoc];

    Line *victim = way;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &line = way[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp;
            line.dirty |= write;
            result.hit = true;
            return result;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }

    if (victim->valid && victim->dirty)
        result.writeback = true;
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = write;
    victim->lruStamp = ++stamp;
    return result;
}

bool
Cache::fill(Addr addr)
{
    if (contains(addr))
        return false;
    const std::uint64_t set = setIndex(addr);
    Line *way = &lines[set * cfg.assoc];
    Line *victim = way;
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        Line &line = way[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim->valid && line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty)
        writebacks.add();
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->dirty = false;
    // Inserted at LRU-adjacent priority: a demand hit promotes it.
    victim->lruStamp = ++stamp;
    return true;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *way = &lines[set * cfg.assoc];
    for (unsigned w = 0; w < cfg.assoc; ++w) {
        if (way[w].valid && way[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines)
        line = Line{};
}

void
Cache::resetStats()
{
    hits.reset();
    misses.reset();
    writebacks.reset();
}

void
Cache::regStats(stats::Group &group)
{
    group.add(&hits);
    group.add(&misses);
    group.add(&writebacks);
    group.addFormula("miss_ratio", [this] { return missRatio(); });
}

void
Cache::saveState(serial::Writer &out) const
{
    out.u64(lines.size());
    for (const Line &line : lines) {
        out.u64(line.tag);
        out.boolean(line.valid);
        out.boolean(line.dirty);
        out.u64(line.lruStamp);
    }
    out.u64(stamp);
    out.u64(hits.value());
    out.u64(misses.value());
    out.u64(writebacks.value());
}

void
Cache::loadState(serial::Reader &in)
{
    const std::uint64_t n = in.u64();
    if (n != lines.size())
        throw serial::Error("cache '" + cfg.name +
                            "': checkpoint geometry mismatch");
    for (Line &line : lines) {
        line.tag = in.u64();
        line.valid = in.boolean();
        line.dirty = in.boolean();
        line.lruStamp = in.u64();
    }
    stamp = in.u64();
    hits.restore(in.u64());
    misses.restore(in.u64());
    writebacks.restore(in.u64());
}

} // namespace parrot::memory
