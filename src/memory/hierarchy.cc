#include "memory/hierarchy.hh"

namespace parrot::memory
{

Hierarchy::Hierarchy(const HierarchyConfig &config) : cfg(config)
{
    cfg.validate();
    l1iCache = std::make_unique<Cache>(cfg.l1i);
    l1dCache = std::make_unique<Cache>(cfg.l1d);
    l2Cache = std::make_unique<Cache>(cfg.l2);
}

unsigned
Hierarchy::missToL2(Addr addr, bool write, HierarchyAccess &out)
{
    auto l2_result = l2Cache->access(addr, write);
    if (l2_result.hit) {
        out.l2Hit = true;
        return cfg.l2.hitLatency;
    }
    memCount.add();
    return cfg.l2.hitLatency + cfg.memLatency;
}

HierarchyAccess
Hierarchy::fetchInst(Addr addr)
{
    HierarchyAccess out;
    out.latency = cfg.l1i.hitLatency;
    auto result = l1iCache->access(addr, false);
    if (result.hit) {
        out.l1Hit = true;
        return out;
    }
    out.latency += missToL2(addr, false, out);
    if (cfg.l1iNextLinePrefetch &&
        l1iCache->fill(addr + cfg.l1i.lineBytes)) {
        prefetchCount.add();
    }
    return out;
}

HierarchyAccess
Hierarchy::accessData(Addr addr, bool write)
{
    HierarchyAccess out;
    out.latency = cfg.l1d.hitLatency;
    auto result = l1dCache->access(addr, write);
    if (result.hit) {
        out.l1Hit = true;
        return out;
    }
    out.latency += missToL2(addr, write, out);
    if (cfg.l1dNextLinePrefetch &&
        l1dCache->fill(addr + cfg.l1d.lineBytes)) {
        prefetchCount.add();
    }
    return out;
}

void
Hierarchy::warmFetchInst(Addr addr)
{
    if (l1iCache->warmAccess(addr, false).hit)
        return;
    l2Cache->warmAccess(addr, false);
    if (cfg.l1iNextLinePrefetch)
        l1iCache->fill(addr + cfg.l1i.lineBytes);
}

void
Hierarchy::warmAccessData(Addr addr, bool write)
{
    if (l1dCache->warmAccess(addr, write).hit)
        return;
    l2Cache->warmAccess(addr, write);
    if (cfg.l1dNextLinePrefetch)
        l1dCache->fill(addr + cfg.l1d.lineBytes);
}

void
Hierarchy::saveState(serial::Writer &out) const
{
    l1iCache->saveState(out);
    l1dCache->saveState(out);
    l2Cache->saveState(out);
    out.u64(memCount.value());
    out.u64(prefetchCount.value());
}

void
Hierarchy::loadState(serial::Reader &in)
{
    l1iCache->loadState(in);
    l1dCache->loadState(in);
    l2Cache->loadState(in);
    memCount.restore(in.u64());
    prefetchCount.restore(in.u64());
}

void
Hierarchy::regStats(stats::Group &group)
{
    l1iCache->regStats(group.subgroup("l1i"));
    l1dCache->regStats(group.subgroup("l1d"));
    l2Cache->regStats(group.subgroup("l2"));
    group.add(&memCount);
    group.add(&prefetchCount);
}

void
Hierarchy::resetStats()
{
    l1iCache->resetStats();
    l1dCache->resetStats();
    l2Cache->resetStats();
    memCount.reset();
}

} // namespace parrot::memory
