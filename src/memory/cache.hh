/**
 * @file
 * A generic set-associative cache model with LRU replacement.
 *
 * Timing-only (no data storage): the simulators are trace-driven and
 * values come from the functional executor, so caches track presence
 * and latency. Each access reports hit/miss; misses are counted and
 * charged the next level's latency by the hierarchy wrapper.
 */

#ifndef PARROT_MEMORY_CACHE_HH
#define PARROT_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "stats/group.hh"
#include "stats/stats.hh"

namespace parrot::memory
{

/** Static geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    unsigned hitLatency = 3; //!< cycles

    /** Number of sets implied by the geometry. */
    std::uint64_t
    numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
    }

    /** Validate the geometry; fatal()s on nonsense. */
    void validate() const;
};

/** Result of one cache access. */
struct AccessResult
{
    bool hit = false;
    bool writeback = false; //!< a dirty line was evicted
};

/**
 * Set-associative LRU cache (tag array only).
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing addr; allocates on miss.
     * @param addr byte address.
     * @param write true for stores (marks the line dirty).
     */
    AccessResult access(Addr addr, bool write);

    /**
     * Warm-state access for sampled fast-forward: identical tag/LRU/
     * allocation behaviour to access(), but records no demand
     * statistics — warm phases keep the arrays hot without polluting
     * the hit/miss counters the detailed windows are measured by.
     */
    AccessResult warmAccess(Addr addr, bool write);

    /** Probe without updating LRU or allocating (for tests/inspection). */
    bool contains(Addr addr) const;

    /**
     * Allocate the line containing addr without touching the demand
     * hit/miss statistics (prefetch fill). No-op when already present.
     * @return true when a new line was brought in.
     */
    bool fill(Addr addr);

    /** Invalidate everything. */
    void flush();

    const CacheConfig &config() const { return cfg; }

    Counter accesses() const { return hits.value() + misses.value(); }
    Counter hitCount() const { return hits.value(); }
    Counter missCount() const { return misses.value(); }
    Counter writebackCount() const { return writebacks.value(); }

    /** Miss ratio in [0,1]; 0 when never accessed. */
    double
    missRatio() const
    {
        Counter total = accesses();
        return total == 0
            ? 0.0 : static_cast<double>(misses.value()) / total;
    }

    /** Reset statistics (contents retained). */
    void resetStats();

    /** Register this cache's stats into a stats-tree group. */
    void regStats(stats::Group &group);

    /** Serialize tags, LRU state and counters to a checkpoint. */
    void saveState(serial::Writer &out) const;

    /** Restore checkpointed state (geometry must match). */
    void loadState(serial::Reader &in);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    std::vector<Line> lines; //!< sets*assoc, row-major by set
    std::uint64_t stamp = 0;
    unsigned lineShift;
    std::uint64_t setMask;

    stats::Scalar hits{"hits"};
    stats::Scalar misses{"misses"};
    stats::Scalar writebacks{"writebacks"};
};

} // namespace parrot::memory

#endif // PARROT_MEMORY_CACHE_HH
