#include "verify/corpus.hh"

#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"

namespace parrot::verify
{

isa::UopKind
uopKindFromName(const std::string &name)
{
    for (unsigned k = 0; k < static_cast<unsigned>(isa::UopKind::NumKinds);
         ++k) {
        auto kind = static_cast<isa::UopKind>(k);
        if (name == isa::uopKindName(kind))
            return kind;
    }
    return isa::UopKind::NumKinds;
}

std::string
renderCorpus(const CorpusEntry &entry)
{
    std::ostringstream out;
    out << "parrot-trace-corpus v1\n";
    if (!entry.comment.empty())
        out << "# " << entry.comment << "\n";
    out << "passmask 0x" << std::hex << entry.passMask << std::dec << "\n";
    out << "seed " << entry.seed << "\n";
    for (const auto &tu : entry.uops) {
        const isa::Uop &u = tu.uop;
        out << "uop " << isa::uopKindName(u.kind) << ' '
            << static_cast<unsigned>(u.dst) << ' '
            << static_cast<unsigned>(u.src1) << ' '
            << static_cast<unsigned>(u.src2) << ' ' << u.imm << ' '
            << static_cast<unsigned>(u.dst2) << ' '
            << static_cast<unsigned>(u.src1b) << ' '
            << static_cast<unsigned>(u.src2b) << ' '
            << isa::uopKindName(u.laneKind) << ' ' << u.assertTarget
            << "\n";
    }
    return out.str();
}

bool
parseCorpus(const std::string &text, CorpusEntry &out, std::string *error)
{
    out = CorpusEntry{};
    auto fail = [&](const std::string &msg, int line_no) {
        if (error) {
            std::ostringstream e;
            e << "corpus line " << line_no << ": " << msg;
            *error = e.str();
        }
        out.uops.clear();
        return false;
    };

    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    bool saw_magic = false;
    while (std::getline(in, line)) {
        ++line_no;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        std::string head;
        if (!(fields >> head))
            continue; // blank / comment-only line

        if (!saw_magic) {
            std::string version;
            if (head != "parrot-trace-corpus" || !(fields >> version) ||
                version != "v1") {
                return fail("expected 'parrot-trace-corpus v1' header",
                            line_no);
            }
            saw_magic = true;
            continue;
        }

        if (head == "passmask") {
            std::string v;
            if (!(fields >> v))
                return fail("missing passmask value", line_no);
            out.passMask = static_cast<unsigned>(
                std::strtoul(v.c_str(), nullptr, 0));
        } else if (head == "seed") {
            if (!(fields >> out.seed))
                return fail("missing seed value", line_no);
        } else if (head == "uop") {
            std::string kind_name, lane_name;
            unsigned dst, src1, src2, dst2, src1b, src2b;
            std::int64_t imm;
            Addr target;
            if (!(fields >> kind_name >> dst >> src1 >> src2 >> imm >>
                  dst2 >> src1b >> src2b >> lane_name >> target)) {
                return fail("malformed uop line", line_no);
            }
            isa::UopKind kind = uopKindFromName(kind_name);
            isa::UopKind lane = uopKindFromName(lane_name);
            if (kind == isa::UopKind::NumKinds)
                return fail("unknown uop kind '" + kind_name + "'",
                            line_no);
            if (lane == isa::UopKind::NumKinds)
                return fail("unknown lane kind '" + lane_name + "'",
                            line_no);
            tracecache::TraceUop tu;
            tu.uop.kind = kind;
            tu.uop.dst = static_cast<RegId>(dst);
            tu.uop.src1 = static_cast<RegId>(src1);
            tu.uop.src2 = static_cast<RegId>(src2);
            tu.uop.imm = imm;
            tu.uop.dst2 = static_cast<RegId>(dst2);
            tu.uop.src1b = static_cast<RegId>(src1b);
            tu.uop.src2b = static_cast<RegId>(src2b);
            tu.uop.laneKind = lane;
            tu.uop.assertTarget = target;
            tu.instIdx = 0;
            tu.uopIdx = 0;
            out.uops.push_back(tu);
        } else {
            return fail("unknown directive '" + head + "'", line_no);
        }
    }
    if (!saw_magic)
        return fail("missing header", line_no);
    return true;
}

bool
loadCorpusFile(const std::string &path, CorpusEntry &out,
               std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open corpus file '" + path + "'";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parseCorpus(text.str(), out, error);
}

bool
writeCorpusFile(const std::string &path, const CorpusEntry &entry)
{
    // Atomic replace: a crash mid-write must never leave a truncated
    // corpus file that a later replay run would trip over.
    return atomic_file::writeFileAtomic(path, renderCorpus(entry));
}

} // namespace parrot::verify
