#include "verify/fuzzer.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>

#include "common/logging.hh"
#include "tracecache/constructor.hh"
#include "tracecache/selector.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace parrot::verify
{

namespace
{

/** Integer temp registers the generator plays with. */
constexpr RegId firstIntReg = 0;
constexpr RegId lastIntReg = 15;
/** FP register window. */
constexpr RegId firstFpReg = 16;
constexpr RegId lastFpReg = 23;

/** Opcode kinds the synthesizer may emit directly (executable ones). */
constexpr isa::UopKind synthKinds[] = {
    isa::UopKind::Nop,     isa::UopKind::Add,    isa::UopKind::AddImm,
    isa::UopKind::Sub,     isa::UopKind::And,    isa::UopKind::Or,
    isa::UopKind::Xor,     isa::UopKind::ShlImm, isa::UopKind::ShrImm,
    isa::UopKind::Mov,     isa::UopKind::MovImm, isa::UopKind::Lea,
    isa::UopKind::Cmp,     isa::UopKind::CmpImm, isa::UopKind::Mul,
    isa::UopKind::Div,     isa::UopKind::Load,   isa::UopKind::Store,
    isa::UopKind::Jump,    isa::UopKind::Branch, isa::UopKind::FpAdd,
    isa::UopKind::FpMul,   isa::UopKind::FpDiv,  isa::UopKind::FpMov,
    isa::UopKind::AssertTaken, isa::UopKind::AssertNotTaken,
    isa::UopKind::FpMulAdd, isa::UopKind::SimdInt, isa::UopKind::SimdFp,
};

std::uint32_t
pairKey(isa::UopKind a, isa::UopKind b)
{
    constexpr std::uint32_t n =
        static_cast<std::uint32_t>(isa::UopKind::NumKinds) + 1;
    return static_cast<std::uint32_t>(a) * n + static_cast<std::uint32_t>(b);
}

/** Bucket the uop reduction for pass-outcome coverage. */
unsigned
reductionBucket(unsigned before, unsigned after)
{
    const unsigned removed = before > after ? before - after : 0;
    return std::min(7u, removed);
}

} // namespace

optimizer::OptimizerConfig
applyPassMask(optimizer::OptimizerConfig base, unsigned mask)
{
    base.propagate = mask & (1u << 0);
    base.memForward = mask & (1u << 1);
    base.dce = mask & (1u << 2);
    base.promote = mask & (1u << 3);
    base.strength = mask & (1u << 4);
    base.fuseCmp = mask & (1u << 5);
    base.fuseFp = mask & (1u << 6);
    base.simdify = mask & (1u << 7);
    base.schedule = mask & (1u << 8);
    return base;
}

TraceFuzzer::TraceFuzzer(const FuzzOptions &options)
    : opts(options), rng(options.seed)
{
    PARROT_ASSERT(opts.seedsPerCheck >= 1, "need at least one seed");
    PARROT_ASSERT(opts.maxUops >= 1 &&
                      opts.maxUops <= tracecache::maxTraceUops,
                  "maxUops out of range");
}

void
TraceFuzzer::harvestPool()
{
    // A few representative apps, each re-seeded from the campaign seed
    // so different campaigns see different (but reproducible) programs.
    for (const char *name : {"swim", "gcc", "flash"}) {
        auto entry = workload::findApp(name);
        entry.profile.seed = rng.next() | 1;
        auto prog = workload::generateProgram(entry.profile);
        workload::Executor ex(*prog, entry.profile);
        tracecache::TraceSelector sel;
        std::map<std::uint64_t, tracecache::TraceCandidate> unique;
        workload::DynInst d;
        tracecache::TraceCandidate c;
        for (std::uint64_t i = 0; i < 20000 && unique.size() < 12; ++i) {
            ex.next(d);
            sel.feed(d);
            while (sel.pop(c))
                unique.emplace(c.tid.hash(), c);
        }
        for (auto &[hash, cand] : unique) {
            tracecache::Trace trace = tracecache::constructTrace(cand);
            if (!trace.uops.empty() && trace.uops.size() <= opts.maxUops) {
                // Pool entries must be self-contained: drop provenance,
                // the fuzzer never needs the backing program again.
                for (auto &tu : trace.uops) {
                    tu.instIdx = -1;
                    tu.uopIdx = -1;
                }
                pool.push_back(trace.uops);
                ++stats.harvested;
            }
        }
    }
}

isa::Uop
TraceFuzzer::randomUop()
{
    // Bias toward the globally least-seen opcodes one time in three so
    // coverage keeps growing even late in a campaign.
    isa::UopKind kind;
    if (rng.chance(1.0 / 3.0)) {
        kind = synthKinds[0];
        std::uint64_t best = opcodeSeen[static_cast<std::size_t>(kind)];
        for (isa::UopKind k : synthKinds) {
            const auto seen = opcodeSeen[static_cast<std::size_t>(k)];
            if (seen < best || (seen == best && rng.chance(0.5))) {
                best = seen;
                kind = k;
            }
        }
    } else {
        kind = synthKinds[rng.below(std::size(synthKinds))];
    }

    auto intReg = [&] {
        return static_cast<RegId>(
            rng.range(firstIntReg, lastIntReg));
    };
    auto fpReg = [&] {
        return static_cast<RegId>(rng.range(firstFpReg, lastFpReg));
    };
    auto imm = [&] { return rng.range(-4096, 4096); };

    using isa::UopKind;
    switch (kind) {
      case UopKind::Nop:
        return isa::makeNop();
      case UopKind::Add: case UopKind::Sub: case UopKind::And:
      case UopKind::Or: case UopKind::Xor: case UopKind::Mul:
      case UopKind::Div:
        return isa::makeAlu(kind, intReg(), intReg(), intReg());
      case UopKind::AddImm: case UopKind::ShlImm: case UopKind::ShrImm:
        return isa::makeAluImm(kind, intReg(), intReg(),
                               kind == UopKind::AddImm
                                   ? imm() : rng.range(0, 8));
      case UopKind::Mov:
        return isa::makeMov(intReg(), intReg());
      case UopKind::MovImm:
        // Powers of two and small constants feed strength reduction and
        // algebraic simplification; large values feed folding.
        switch (rng.below(4)) {
          case 0: return isa::makeMovImm(intReg(), 0);
          case 1: return isa::makeMovImm(intReg(), 1);
          case 2:
            return isa::makeMovImm(intReg(),
                                   std::int64_t{1} << rng.below(16));
          default: return isa::makeMovImm(intReg(), imm());
        }
      case UopKind::Lea:
        return isa::makeLea(intReg(), intReg(), intReg(), imm());
      case UopKind::Cmp:
        return isa::makeCmp(intReg(), intReg());
      case UopKind::CmpImm:
        return isa::makeCmpImm(intReg(), imm());
      case UopKind::Load:
        return isa::makeLoad(intReg(), intReg(), imm() & ~7ll);
      case UopKind::Store:
        return isa::makeStore(intReg(), intReg(), imm() & ~7ll);
      case UopKind::Jump:
        return isa::makeJump();
      case UopKind::Branch:
        return isa::makeBranch();
      case UopKind::FpAdd: case UopKind::FpMul: case UopKind::FpDiv:
        return isa::makeFp(kind, fpReg(), fpReg(), fpReg());
      case UopKind::FpMov:
        return isa::makeFp(UopKind::FpMov, fpReg(), fpReg(), invalidReg);
      case UopKind::AssertTaken:
      case UopKind::AssertNotTaken:
        return isa::makeAssert(kind == UopKind::AssertTaken,
                               0x400000 + (rng.next() & 0xffff));
      case UopKind::FpMulAdd:
        return isa::makeFpMulAdd(fpReg(), fpReg(), fpReg(), fpReg());
      case UopKind::SimdInt: case UopKind::SimdFp: {
        const bool fp = kind == UopKind::SimdFp;
        const UopKind lane = fp
            ? (rng.chance(0.5) ? UopKind::FpAdd : UopKind::FpMul)
            : (rng.chance(0.5) ? UopKind::Add : UopKind::Xor);
        auto mk = [&] {
            return fp ? isa::makeFp(lane, fpReg(), fpReg(), fpReg())
                      : isa::makeAlu(lane, intReg(), intReg(), intReg());
        };
        isa::Uop a = mk(), b = mk();
        // Lanes must write distinct registers to be a valid pack.
        while (b.dst == a.dst)
            b.dst = fp ? fpReg() : intReg();
        return isa::makeSimdPair(lane, a, b);
      }
      default:
        return isa::makeNop();
    }
}

std::vector<tracecache::TraceUop>
TraceFuzzer::synthesize()
{
    const unsigned len =
        1 + static_cast<unsigned>(rng.below(opts.maxUops));
    std::vector<tracecache::TraceUop> out;
    out.reserve(len);
    for (unsigned i = 0; i < len; ++i) {
        tracecache::TraceUop tu;
        tu.uop = randomUop();
        out.push_back(tu);
    }
    return out;
}

std::vector<tracecache::TraceUop>
TraceFuzzer::mutate(const std::vector<tracecache::TraceUop> &in)
{
    std::vector<tracecache::TraceUop> out = in;
    const unsigned n_mutations = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned m = 0; m < n_mutations; ++m) {
        if (out.empty())
            break;
        switch (rng.below(5)) {
          case 0: { // perturb one uop's immediate
            auto &u = out[rng.below(out.size())].uop;
            u.imm += rng.range(-16, 16);
            break;
          }
          case 1: { // retarget one register field
            auto &u = out[rng.below(out.size())].uop;
            RegId r = static_cast<RegId>(rng.range(0, lastFpReg));
            switch (rng.below(3)) {
              case 0: if (u.dst != invalidReg) u.dst = r; break;
              case 1: if (u.src1 != invalidReg) u.src1 = r; break;
              default: if (u.src2 != invalidReg) u.src2 = r; break;
            }
            break;
          }
          case 2: { // insert a fresh uop
            if (out.size() < opts.maxUops) {
                tracecache::TraceUop tu;
                tu.uop = randomUop();
                out.insert(out.begin() + rng.below(out.size() + 1), tu);
            }
            break;
          }
          case 3: { // drop a slice
            const std::size_t at = rng.below(out.size());
            const std::size_t len =
                1 + rng.below(std::min<std::size_t>(4, out.size() - at));
            out.erase(out.begin() + at, out.begin() + at + len);
            break;
          }
          default: { // splice a window from another pool entry
            if (!pool.empty()) {
                const auto &other = pool[rng.below(pool.size())];
                if (!other.empty()) {
                    const std::size_t at = rng.below(other.size());
                    const std::size_t len = 1 +
                        rng.below(std::min<std::size_t>(8,
                                                        other.size() - at));
                    out.insert(out.begin() + rng.below(out.size() + 1),
                               other.begin() + at,
                               other.begin() + at + len);
                }
            }
            break;
          }
        }
    }
    if (out.size() > opts.maxUops)
        out.resize(opts.maxUops);
    if (out.empty()) {
        tracecache::TraceUop tu;
        tu.uop = randomUop();
        out.push_back(tu);
    }
    return out;
}

std::vector<tracecache::TraceUop>
TraceFuzzer::generate()
{
    if (!pool.empty() && rng.chance(0.45)) {
        ++stats.mutated;
        return mutate(pool[rng.below(pool.size())]);
    }
    ++stats.synthesized;
    return synthesize();
}

unsigned
TraceFuzzer::pickMask(std::uint64_t iteration)
{
    // Sweep every single-pass configuration first — pinning a failure
    // to one pass makes the minimized reproducer far more useful — then
    // alternate between the full pipeline and random subsets (pass
    // *interactions* are where the subtle bugs live).
    if (iteration < numTogglablePasses)
        return 1u << iteration;
    if (rng.chance(0.4))
        return fullPassMask;
    return static_cast<unsigned>(rng.next()) & fullPassMask;
}

bool
TraceFuzzer::check(const std::vector<tracecache::TraceUop> &uops,
                   unsigned pass_mask, std::uint64_t eq_seed,
                   std::string *why, std::uint64_t *failing_seed)
{
    tracecache::Trace trace;
    trace.uops = uops;
    trace.originalUopCount = static_cast<std::uint16_t>(uops.size());
    optimizer::TraceOptimizer opt{applyPassMask(opts.base, pass_mask)};
    opt.optimize(trace);
    stats.equivalenceChecks += opts.seedsPerCheck;
    return optimizer::equivalentSweep(uops, trace.uops, eq_seed,
                                      opts.seedsPerCheck, why,
                                      failing_seed);
}

bool
TraceFuzzer::replay(const CorpusEntry &entry, std::string *why)
{
    return check(entry.uops, entry.passMask, entry.seed, why);
}

bool
TraceFuzzer::recordCoverage(const std::vector<tracecache::TraceUop> &uops,
                            unsigned mask, unsigned uops_before,
                            unsigned uops_after)
{
    bool fresh = false;
    auto prev = isa::UopKind::NumKinds; // sentinel: sequence start
    for (const auto &tu : uops) {
        ++opcodeSeen[static_cast<std::size_t>(tu.uop.kind)];
        fresh |= pairCoverage.insert(pairKey(prev, tu.uop.kind)).second;
        prev = tu.uop.kind;
    }
    const std::uint32_t outcome =
        mask * 16u + reductionBucket(uops_before, uops_after);
    fresh |= outcomeCoverage.insert(outcome).second;
    return fresh;
}

std::vector<tracecache::TraceUop>
TraceFuzzer::minimize(std::vector<tracecache::TraceUop> uops,
                      unsigned pass_mask, std::uint64_t eq_seed)
{
    // ddmin over uop subsequences: still-failing subsets shrink the
    // input; granularity doubles when no chunk can be removed.
    auto still_fails = [&](const std::vector<tracecache::TraceUop> &u) {
        return !u.empty() && !check(u, pass_mask, eq_seed);
    };
    PARROT_ASSERT(still_fails(uops), "minimize needs a failing input");

    std::size_t granularity = 2;
    while (uops.size() >= 2) {
        const std::size_t chunk =
            std::max<std::size_t>(1, uops.size() / granularity);
        bool shrunk = false;
        for (std::size_t at = 0; at < uops.size(); at += chunk) {
            std::vector<tracecache::TraceUop> candidate = uops;
            const auto end =
                std::min(at + chunk, candidate.size());
            candidate.erase(candidate.begin() + at,
                            candidate.begin() + end);
            if (still_fails(candidate)) {
                uops = std::move(candidate);
                shrunk = true;
                break; // restart the scan on the smaller input
            }
        }
        if (shrunk) {
            granularity = std::max<std::size_t>(2, granularity - 1);
            continue;
        }
        if (chunk == 1)
            break; // 1-minimal
        granularity *= 2;
    }
    return uops;
}

FuzzStats
TraceFuzzer::run()
{
    harvestPool();
    // Harvested traces participate directly: real traces exercise the
    // provenance-carrying paths synthetic inputs cannot reach.
    std::size_t next_harvest = 0;

    for (std::uint64_t i = 0; i < opts.iterations; ++i) {
        ++stats.iterations;

        std::vector<tracecache::TraceUop> input;
        if (next_harvest < pool.size() && i % 7 == 0) {
            input = pool[next_harvest++];
        } else {
            input = generate();
        }
        const unsigned mask = pickMask(i);

        tracecache::Trace trace;
        trace.uops = input;
        trace.originalUopCount =
            static_cast<std::uint16_t>(input.size());
        optimizer::TraceOptimizer opt{applyPassMask(opts.base, mask)};
        opt.optimize(trace);

        if (recordCoverage(input, mask,
                           static_cast<unsigned>(input.size()),
                           static_cast<unsigned>(trace.uops.size()))) {
            ++stats.coverageInputs;
            if (pool.size() < 512)
                pool.push_back(input);
            else
                pool[rng.below(pool.size())] = input;
        }

        std::string why;
        std::uint64_t bad_seed = 0;
        stats.equivalenceChecks += opts.seedsPerCheck;
        if (optimizer::equivalentSweep(input, trace.uops, opts.seed + i,
                                       opts.seedsPerCheck, &why,
                                       &bad_seed))
            continue;

        // Failure: minimize and record.
        FuzzFailure fail;
        fail.originalUops = input.size();
        fail.entry.uops = minimize(std::move(input), mask, opts.seed + i);
        fail.entry.passMask = mask;
        fail.entry.seed = opts.seed + i;
        std::string min_why;
        check(fail.entry.uops, mask, fail.entry.seed, &min_why);
        fail.why = min_why.empty() ? why : min_why;
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "iteration %llu passmask 0x%x: %s",
                      static_cast<unsigned long long>(i), mask,
                      fail.why.c_str());
        fail.entry.comment = buf;

        if (!opts.corpusDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(opts.corpusDir, ec);
            char name[96];
            std::snprintf(name, sizeof(name),
                          "fail-%03zu-seed%llu-mask0x%x.trace",
                          stats.failures.size(),
                          static_cast<unsigned long long>(opts.seed),
                          mask);
            const std::string path =
                (std::filesystem::path(opts.corpusDir) / name).string();
            if (writeCorpusFile(path, fail.entry))
                fail.file = path;
            else
                PARROT_WARN("fuzzer: cannot write corpus file %s",
                            path.c_str());
        }
        if (opts.verbose) {
            std::fprintf(stderr,
                         "parrot_fuzz: FAIL %s (minimized %zu -> %zu "
                         "uops)%s%s\n",
                         fail.entry.comment.c_str(), fail.originalUops,
                         fail.entry.uops.size(),
                         fail.file.empty() ? "" : " -> ",
                         fail.file.c_str());
        }
        stats.failures.push_back(std::move(fail));
        if (stats.failures.size() >= opts.maxFailures)
            break;
    }

    stats.opcodePairsCovered = pairCoverage.size();
    stats.passOutcomesCovered = outcomeCoverage.size();
    stats.poolSize = pool.size();
    return stats;
}

ReplayResult
replayCorpusDir(const std::string &dir,
                const optimizer::OptimizerConfig &base,
                unsigned seeds_per_check)
{
    ReplayResult result;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return result; // missing directory == empty corpus

    std::vector<std::string> paths;
    for (const auto &entry : it) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".trace")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());

    FuzzOptions opts;
    opts.base = base;
    opts.seedsPerCheck = seeds_per_check;
    TraceFuzzer fuzzer(opts);

    for (const auto &path : paths) {
        CorpusEntry entry;
        std::string error;
        if (!loadCorpusFile(path, entry, &error)) {
            ++result.total;
            ++result.failed;
            result.reports.push_back(path + ": parse error: " + error);
            continue;
        }
        ++result.total;
        std::string why;
        if (!fuzzer.replay(entry, &why)) {
            ++result.failed;
            result.reports.push_back(path + ": " + why);
        }
    }
    return result;
}

} // namespace parrot::verify
