/**
 * @file
 * Corpus files: a plain-text, diff-friendly serialization of a trace
 * uop sequence plus the fuzzing context that produced it (pass mask,
 * failing equivalence seed). The optimizer fuzzer dumps minimized
 * failing traces in this format under `tests/optimizer/corpus/`, and
 * the corpus-replay test re-runs every file through the full pass
 * pipeline on each CI run, so a once-found optimizer bug can never
 * silently return.
 *
 * Format (one directive or uop per line, `#` comments):
 *
 * ```
 * parrot-trace-corpus v1
 * passmask 0x1ff          # optimizer pass subset that failed
 * seed 42                 # equivalence seed that exposed it
 * uop add 3 1 2 0 255 255 255 nop 0
 * uop ld 4 3 0 16 255 255 255 nop 0
 * ```
 *
 * A `uop` line is: kind dst src1 src2 imm dst2 src1b src2b laneKind
 * assertTarget (registers as decimal ids, 255 = invalid).
 */

#ifndef PARROT_VERIFY_CORPUS_HH
#define PARROT_VERIFY_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tracecache/trace.hh"

namespace parrot::verify
{

/** One corpus entry: a uop sequence plus reproduction context. */
struct CorpusEntry
{
    std::vector<tracecache::TraceUop> uops;
    unsigned passMask = ~0u;      //!< optimizer pass subset (bit per pass)
    std::uint64_t seed = 0;       //!< equivalence seed that failed
    std::string comment;          //!< free-form provenance note
};

/** Render an entry to the corpus text format. */
std::string renderCorpus(const CorpusEntry &entry);

/**
 * Parse corpus text.
 * @param text file contents.
 * @param error when non-null, receives a message on failure.
 * @return the entry, with empty uops on a parse error.
 */
bool parseCorpus(const std::string &text, CorpusEntry &out,
                 std::string *error = nullptr);

/** Load and parse one corpus file. */
bool loadCorpusFile(const std::string &path, CorpusEntry &out,
                    std::string *error = nullptr);

/** Write an entry to a file; returns false on I/O failure. */
bool writeCorpusFile(const std::string &path, const CorpusEntry &entry);

/** Parse a uop kind mnemonic ("add", "simd.i", ...); NumKinds on failure. */
isa::UopKind uopKindFromName(const std::string &name);

} // namespace parrot::verify

#endif // PARROT_VERIFY_CORPUS_HH
