/**
 * @file
 * Coverage-guided differential fuzzer for the trace optimizer.
 *
 * Each iteration draws a uop sequence — harvested from real synthetic
 * workloads, mutated from a pool of coverage-increasing inputs, or
 * synthesized from scratch with a bias toward rarely-seen opcodes —
 * picks a subset of optimizer passes, runs the full
 * optimizer::TraceOptimizer pipeline and checks semantic equivalence
 * against the unoptimized sequence across a sweep of random initial
 * states. Failing inputs are minimized (ddmin over uops) and dumped as
 * corpus files so the bug stays reproducible forever.
 *
 * Coverage has two dimensions, both used to steer generation:
 *  - opcode-pair coverage: which adjacent (kind, kind) pairs have been
 *    fed to the optimizer;
 *  - pass-outcome coverage: which (pass mask, uop-reduction bucket)
 *    combinations have been observed.
 * An input discovering either kind of new coverage enters the mutation
 * pool.
 */

#ifndef PARROT_VERIFY_FUZZER_HH
#define PARROT_VERIFY_FUZZER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.hh"
#include "optimizer/equivalence.hh"
#include "optimizer/optimizer.hh"
#include "verify/corpus.hh"

namespace parrot::verify
{

/** Number of independently togglable optimizer passes (mask width). */
inline constexpr unsigned numTogglablePasses = 9;

/** Mask with every optimizer pass enabled. */
inline constexpr unsigned fullPassMask = (1u << numTogglablePasses) - 1;

/**
 * Apply a pass-subset mask to a base configuration. Bit order matches
 * the pipeline: propagate, memForward, dce, promote, strength, fuseCmp,
 * fuseFp, simdify, schedule. Non-pass knobs (latency, rounds, the
 * debugBreakDce hook) are preserved from the base.
 */
optimizer::OptimizerConfig applyPassMask(optimizer::OptimizerConfig base,
                                         unsigned mask);

/** Fuzzing campaign parameters. */
struct FuzzOptions
{
    std::uint64_t iterations = 1000;
    std::uint64_t seed = 1;
    unsigned maxUops = tracecache::maxTraceUops;
    unsigned seedsPerCheck = optimizer::defaultEquivalenceSeeds;
    std::string corpusDir; //!< dump minimized failures here ("" = don't)
    optimizer::OptimizerConfig base; //!< base optimizer configuration
    bool verbose = false;
    unsigned maxFailures = 10; //!< stop the campaign after this many
};

/** One equivalence failure, minimized. */
struct FuzzFailure
{
    CorpusEntry entry;          //!< minimized reproducer
    std::string why;            //!< mismatch report (includes seed)
    std::string file;           //!< corpus path written, if any
    std::size_t originalUops = 0; //!< size before minimization
};

/** Campaign statistics. */
struct FuzzStats
{
    std::uint64_t iterations = 0;
    std::uint64_t harvested = 0;   //!< inputs taken from workload traces
    std::uint64_t synthesized = 0; //!< inputs generated from scratch
    std::uint64_t mutated = 0;     //!< inputs mutated from the pool
    std::uint64_t equivalenceChecks = 0; //!< individual seed comparisons
    std::uint64_t coverageInputs = 0; //!< inputs that found new coverage
    std::size_t opcodePairsCovered = 0;
    std::size_t passOutcomesCovered = 0;
    std::size_t poolSize = 0;
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }
};

/** Outcome of replaying a corpus directory. */
struct ReplayResult
{
    unsigned total = 0;  //!< corpus files found
    unsigned failed = 0; //!< files whose check no longer passes
    std::vector<std::string> reports; //!< one line per failing file
};

/** The fuzzer. One instance = one deterministic campaign. */
class TraceFuzzer
{
  public:
    explicit TraceFuzzer(const FuzzOptions &options);

    /** Run the campaign; deterministic in FuzzOptions. */
    FuzzStats run();

    /**
     * One differential check: optimize a copy of `uops` under the
     * masked configuration and sweep equivalence seeds.
     * @return true when the optimized trace is equivalent.
     */
    bool check(const std::vector<tracecache::TraceUop> &uops,
               unsigned pass_mask, std::uint64_t eq_seed,
               std::string *why = nullptr,
               std::uint64_t *failing_seed = nullptr);

    /** Re-check one corpus entry (used by replay and tests). */
    bool replay(const CorpusEntry &entry, std::string *why = nullptr);

    /**
     * Shrink a failing input with ddmin-style chunk removal until no
     * strict subsequence still fails the masked check.
     */
    std::vector<tracecache::TraceUop>
    minimize(std::vector<tracecache::TraceUop> uops, unsigned pass_mask,
             std::uint64_t eq_seed);

  private:
    /** Seed the mutation pool with traces harvested from workloads. */
    void harvestPool();

    /** Generate the next input (harvest / mutate / synthesize). */
    std::vector<tracecache::TraceUop> generate();

    /** Random uop sequence biased toward uncovered opcodes. */
    std::vector<tracecache::TraceUop> synthesize();

    /** Mutate one pool entry (splice, perturb, duplicate, drop). */
    std::vector<tracecache::TraceUop>
    mutate(const std::vector<tracecache::TraceUop> &in);

    /** One random, executable uop. */
    isa::Uop randomUop();

    /** Pick the pass mask for this iteration. */
    unsigned pickMask(std::uint64_t iteration);

    /** Record coverage; returns true when anything new was seen. */
    bool recordCoverage(const std::vector<tracecache::TraceUop> &uops,
                        unsigned mask, unsigned uops_before,
                        unsigned uops_after);

    FuzzOptions opts;
    Rng rng;
    FuzzStats stats;
    std::vector<std::vector<tracecache::TraceUop>> pool;
    std::unordered_set<std::uint32_t> pairCoverage;
    std::unordered_set<std::uint32_t> outcomeCoverage;
    std::array<std::uint64_t,
               static_cast<std::size_t>(isa::UopKind::NumKinds)>
        opcodeSeen{};
};

/**
 * Replay every `*.trace` corpus file in a directory through the full
 * check (each file's own pass mask and seed, swept across
 * `seeds_per_check` derived initial states).
 */
ReplayResult replayCorpusDir(const std::string &dir,
                             const optimizer::OptimizerConfig &base,
                             unsigned seeds_per_check =
                                 optimizer::defaultEquivalenceSeeds);

} // namespace parrot::verify

#endif // PARROT_VERIFY_FUZZER_HH
