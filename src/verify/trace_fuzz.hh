/**
 * @file
 * Fuzzing harness for the `.ptrace` decoder (workload/trace_codec.hh).
 *
 * The property under test: for ANY input bytes the decoder either
 * accepts (and then replays infallibly, with the dynamic totals it
 * declared) or rejects with a TraceFormatError — never a crash, hang,
 * over-allocation, foreign exception, or silent mis-simulation. The
 * campaign starts from a tiny valid recording, applies both targeted
 * per-category corruptions and random structural mutations (including
 * CRC-fixup mutations that tunnel past the checksums into the deep
 * validation paths), and ddmin-minimizes each rejection into a corpus
 * exemplar keyed by its stable rejection category. The committed
 * corpus under tests/workload/corpus/ replays on every CI run, so an
 * input class the decoder once rejected can never start crashing (or
 * being accepted) unnoticed.
 */

#ifndef PARROT_VERIFY_TRACE_FUZZ_HH
#define PARROT_VERIFY_TRACE_FUZZ_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace_codec.hh"

namespace parrot::verify
{

/** How the decoder handled one input. */
enum class TraceProbeOutcome : std::uint8_t
{
    Accepted, //!< decoded + validated clean (replay checked)
    Rejected, //!< threw TraceFormatError (the correct failure mode)
    Escaped,  //!< threw anything else — a decoder bug
};

/** Result of feeding one byte string to the decoder. */
struct TraceProbe
{
    TraceProbeOutcome outcome = TraceProbeOutcome::Escaped;
    /** Rejection category (valid when outcome == Rejected). */
    workload::TraceError category = workload::TraceError::NumErrors;
    std::string message;
};

/**
 * Decode `bytes` under a try/catch harness. On acceptance, replay the
 * whole stream and cross-check the record/uop/CTI totals against the
 * header (an acceptance that then mis-replays is reported as Escaped).
 */
TraceProbe probeTraceBytes(const std::string &bytes);

/** One minimized rejection exemplar (what the corpus stores). */
struct TraceCorpusEntry
{
    workload::TraceError category = workload::TraceError::NumErrors;
    std::string bytes;   //!< raw input (possibly empty)
    std::string comment; //!< provenance note
};

/** Render to the corpus text format ("parrot-ptrace-corpus v1"). */
std::string renderTraceCorpus(const TraceCorpusEntry &entry);

/** Parse corpus text; false (with *error) on malformed files. */
bool parseTraceCorpus(const std::string &text, TraceCorpusEntry &out,
                      std::string *error = nullptr);

/** Load and parse one corpus file. */
bool loadTraceCorpusFile(const std::string &path, TraceCorpusEntry &out,
                         std::string *error = nullptr);

/** Write an entry (atomically); false on I/O failure. */
bool writeTraceCorpusFile(const std::string &path,
                          const TraceCorpusEntry &entry);

/**
 * ddmin over the input bytes: the smallest found input that is still
 * rejected with the same category. Probe count is budget-bounded, so
 * the result is small rather than provably 1-minimal.
 */
std::string ddminReject(const std::string &bytes,
                        workload::TraceError category);

/**
 * Build one corrupted variant of `valid` per reachable rejection
 * category (Io is file-level and has no byte form). Each entry's
 * category is what the decoder MUST reject it with — the corrupt-input
 * unit matrix and the fuzzer's targeted seeding both consume this.
 */
std::vector<TraceCorpusEntry>
craftRejectionSeeds(const std::string &valid);

/** A tiny but structurally complete valid recording (fuzzing base). */
std::string makeTinyTraceBytes(std::uint64_t seed, std::uint64_t records);

/** Outcome of replaying a corpus directory. */
struct TraceReplayResult
{
    unsigned total = 0;  //!< corpus files found
    unsigned failed = 0; //!< files no longer rejected as recorded
    std::vector<std::string> reports; //!< one line per failure
};

/** Re-probe every `*.trace` file in `dir` against its recorded
 * category. */
TraceReplayResult replayTraceCorpusDir(const std::string &dir);

/** Campaign parameters. */
struct TraceFuzzOptions
{
    std::uint64_t iterations = 500;
    std::uint64_t seed = 1;
    std::uint64_t records = 64;  //!< dynamic records in the base trace
    std::string corpusDir;       //!< dump minimized rejections ("" = no)
    bool verbose = false;
    unsigned maxFailures = 10;   //!< stop the campaign after this many
};

/** One decoder bug found by the campaign. */
struct TraceFuzzFailure
{
    std::string why;
    std::string file;  //!< corpus path written, if any
    std::string bytes; //!< offending input, minimized when possible
};

/** Campaign statistics. */
struct TraceFuzzStats
{
    std::uint64_t iterations = 0;
    std::uint64_t accepted = 0; //!< mutants that still decode clean
    std::uint64_t rejected = 0;
    /** Rejections per category (indexed by TraceError). */
    std::array<std::uint64_t,
               static_cast<std::size_t>(
                   workload::TraceError::NumErrors)>
        byCategory{};
    std::size_t categoriesCovered = 0;
    std::size_t corpusWritten = 0;
    std::vector<TraceFuzzFailure> failures;

    bool clean() const { return failures.empty(); }
};

/** The decoder fuzzer. One instance = one deterministic campaign. */
class TraceDecoderFuzzer
{
  public:
    explicit TraceDecoderFuzzer(const TraceFuzzOptions &options);

    /** Run the campaign; deterministic in TraceFuzzOptions. */
    TraceFuzzStats run();

  private:
    TraceFuzzOptions opts;
};

} // namespace parrot::verify

#endif // PARROT_VERIFY_TRACE_FUZZ_HH
