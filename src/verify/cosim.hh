/**
 * @file
 * Differential co-simulation oracle for the PARROT machine.
 *
 * The paper's §2 contract is that optimized traces are architecturally
 * transparent: the hot pipeline must commit exactly what a simple
 * sequential machine executing the original macro-instructions would.
 * The oracle enforces that end to end while the timing simulator runs:
 * it keeps two functional `isa::ArchState`s in lock-step with the
 * committed stream —
 *
 *  - the *reference* state executes the original uops of every
 *    committed macro-instruction in program order (the sequential
 *    machine);
 *  - the *machine* state executes exactly what the pipelines
 *    dispatched and committed: the same original uops on the cold
 *    path, and the trace's stored (possibly optimized) uop sequence
 *    on hot-trace commits —
 *
 * and compares the full architectural register file plus all memory
 * words written since the previous boundary at every commit boundary.
 * Flags are excluded (and re-synchronized) at atomic-trace boundaries,
 * where the trace-semantics convention makes them dead; everywhere
 * else the comparison is exact. Aborted traces never commit
 * architecturally and are therefore never fed to the oracle.
 */

#ifndef PARROT_VERIFY_COSIM_HH
#define PARROT_VERIFY_COSIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "isa/arch_state.hh"
#include "stats/group.hh"
#include "tracecache/trace.hh"
#include "workload/dyninst.hh"

namespace parrot::verify
{

/** Oracle knobs. */
struct CosimConfig
{
    /** Stop composing mismatch reports after this many (counting
     * continues; reports are the expensive part). */
    unsigned maxMismatchReports = 8;
    /** Re-synchronize the machine state to the reference after a
     * mismatch so one divergence is counted once, not once per
     * subsequent commit. */
    bool resyncOnMismatch = true;
};

/** Oracle counters, exported into SimResult after a run. */
struct CosimStats
{
    std::uint64_t coldCommits = 0;   //!< cold boundaries compared
    std::uint64_t traceCommits = 0;  //!< atomic-trace boundaries compared
    std::uint64_t uopsExecuted = 0;  //!< functional uops run (both sides)
    std::uint64_t mismatches = 0;    //!< divergence events detected
    std::string firstMismatch;       //!< human-readable first report
};

/**
 * The lock-step differential oracle. Create one per simulation; feed
 * every architectural commit in program order.
 */
class CosimOracle
{
  public:
    explicit CosimOracle(const CosimConfig &config = {});

    /** One cold-pipeline macro-instruction committed. */
    void onColdCommit(const workload::DynInst &dyn);

    /**
     * One atomic trace committed: `window` is the committed
     * macro-instruction stream the trace covered (same length as
     * trace.path); the machine side executes trace.uops.
     */
    void onTraceCommit(const tracecache::Trace &trace,
                       const std::vector<workload::DynInst> &window);

    const CosimStats &stats() const { return st; }

    /** True while no divergence has been observed. */
    bool clean() const { return st.mismatches == 0; }

    /** Register the oracle counters into a stats-tree group. */
    void
    regStats(stats::Group &group)
    {
        group.addFormula("cold_commits", [this] {
            return static_cast<double>(st.coldCommits);
        });
        group.addFormula("trace_commits", [this] {
            return static_cast<double>(st.traceCommits);
        });
        group.addFormula("uops_executed", [this] {
            return static_cast<double>(st.uopsExecuted);
        });
        group.addFormula("mismatches", [this] {
            return static_cast<double>(st.mismatches);
        });
    }

    /** Read-only views for tests. */
    const isa::ArchState &referenceState() const { return ref; }
    const isa::ArchState &machineState() const { return dut; }

    /** Serialize both lock-step states and the oracle counters, so a
     * checkpointed run resumes with the oracle still in step. */
    void
    saveState(serial::Writer &out) const
    {
        isa::saveArchState(ref, out);
        isa::saveArchState(dut, out);
        out.u64(touched.size());
        for (Addr a : touched)
            out.u64(a);
        out.u64(st.coldCommits);
        out.u64(st.traceCommits);
        out.u64(st.uopsExecuted);
        out.u64(st.mismatches);
        out.str(st.firstMismatch);
    }

    /** Restore checkpointed oracle state. */
    void
    loadState(serial::Reader &in)
    {
        isa::loadArchState(ref, in);
        isa::loadArchState(dut, in);
        touched.clear();
        const std::uint64_t n = in.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            touched.push_back(in.u64());
        st.coldCommits = in.u64();
        st.traceCommits = in.u64();
        st.uopsExecuted = in.u64();
        st.mismatches = in.u64();
        st.firstMismatch = in.str();
    }

  private:
    /** Compare states at a boundary; record + optionally resync. */
    void compareAt(const char *where, Addr pc, bool ignore_flags);

    CosimConfig cfg;
    CosimStats st;

    isa::ArchState ref; //!< sequential reference machine
    isa::ArchState dut; //!< what the pipelines actually executed

    /** Memory words written by either side since the last compare. */
    std::vector<Addr> touched;
};

} // namespace parrot::verify

#endif // PARROT_VERIFY_COSIM_HH
