#include "verify/cosim.hh"

#include <cstdio>

#include "common/logging.hh"
#include "isa/registers.hh"

namespace parrot::verify
{

CosimOracle::CosimOracle(const CosimConfig &config) : cfg(config)
{
    touched.reserve(2 * tracecache::maxTraceUops);
}

void
CosimOracle::onColdCommit(const workload::DynInst &dyn)
{
    touched.clear();
    for (const isa::Uop &uop : dyn.inst->uops) {
        auto ri = isa::executeUop(uop, ref);
        auto di = isa::executeUop(uop, dut);
        st.uopsExecuted += 2;
        if (ri.isStore)
            touched.push_back(ri.addr);
        if (di.isStore && (!ri.isStore || di.addr != ri.addr))
            touched.push_back(di.addr);
    }
    ++st.coldCommits;
    compareAt("cold", dyn.pc(), /*ignore_flags=*/false);
}

void
CosimOracle::onTraceCommit(const tracecache::Trace &trace,
                           const std::vector<workload::DynInst> &window)
{
    touched.clear();
    // Reference side: the sequential machine executes the original
    // uops of every instruction on the committed path, in order.
    for (const auto &dyn : window) {
        for (const isa::Uop &uop : dyn.inst->uops) {
            auto info = isa::executeUop(uop, ref);
            ++st.uopsExecuted;
            if (info.isStore)
                touched.push_back(info.addr);
        }
    }
    // Machine side: exactly the uop sequence the hot pipeline
    // dispatched — the stored, possibly optimized trace.
    for (const auto &tu : trace.uops) {
        auto info = isa::executeUop(tu.uop, dut);
        ++st.uopsExecuted;
        if (info.isStore)
            touched.push_back(info.addr);
    }
    ++st.traceCommits;
    compareAt(trace.optimized ? "optimized-trace" : "trace",
              trace.tid.startPc, /*ignore_flags=*/true);
    // Flags are dead at atomic trace boundaries (the optimizer may
    // legally kill them, e.g. by fusing Cmp+Assert); resynchronize so
    // later cold boundaries stay exact.
    dut.setReg(isa::regFlags, ref.reg(isa::regFlags));
}

void
CosimOracle::compareAt(const char *where, Addr pc, bool ignore_flags)
{
    const char *detail = nullptr;
    char buf[160];

    for (unsigned r = 0; r < isa::numArchRegs && !detail; ++r) {
        if (ignore_flags && r == isa::regFlags)
            continue;
        auto rv = ref.reg(static_cast<RegId>(r));
        auto dv = dut.reg(static_cast<RegId>(r));
        if (rv != dv) {
            std::snprintf(buf, sizeof(buf),
                          "r%u = %lld (machine) vs %lld (reference)", r,
                          static_cast<long long>(dv),
                          static_cast<long long>(rv));
            detail = buf;
        }
    }
    for (std::size_t i = 0; i < touched.size() && !detail; ++i) {
        const Addr addr = touched[i];
        if (ref.mem.read(addr) != dut.mem.read(addr)) {
            std::snprintf(buf, sizeof(buf),
                          "mem[0x%llx] = %lld (machine) vs %lld "
                          "(reference)",
                          static_cast<unsigned long long>(addr),
                          static_cast<long long>(dut.mem.read(addr)),
                          static_cast<long long>(ref.mem.read(addr)));
            detail = buf;
        }
    }
    if (!detail)
        return;

    ++st.mismatches;
    if (st.mismatches <= cfg.maxMismatchReports) {
        char report[256];
        std::snprintf(report, sizeof(report),
                      "cosim mismatch #%llu at %s commit pc=0x%llx: %s",
                      static_cast<unsigned long long>(st.mismatches),
                      where, static_cast<unsigned long long>(pc), detail);
        if (st.firstMismatch.empty())
            st.firstMismatch = report;
        PARROT_WARN("%s", report);
    }
    if (cfg.resyncOnMismatch)
        dut = ref; // count one divergence event, then continue checking
}

} // namespace parrot::verify
