/** @file Implementation of the `.ptrace` decoder fuzzing harness. */

#include "verify/trace_fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace parrot::verify
{

namespace
{

using workload::TraceError;
using workload::TraceFormatError;

// ---------------------------------------------------------------------
// Local byte helpers (the fuzzer manipulates the wire format directly;
// it deliberately does not share code with the decoder it tests).
// ---------------------------------------------------------------------

std::uint32_t
getU32(const std::string &bytes, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<std::uint8_t>(bytes[off + i]);
    return v;
}

void
setU32(std::string &bytes, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[off + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

/** Independent CRC32 (same polynomial as the codec). */
std::uint32_t
crc32(const char *data, std::size_t len)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        c ^= static_cast<std::uint8_t>(data[i]);
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    return c ^ 0xFFFFFFFFu;
}

std::uint64_t
readVarint(const std::string &bytes, std::size_t &off)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64 && off < bytes.size();
         shift += 7) {
        const auto b = static_cast<std::uint8_t>(bytes[off++]);
        v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            break;
    }
    return v;
}

void
writeVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/** One framed section located inside a file image. */
struct Frame
{
    std::size_t frameOff;   //!< where [len][crc] starts
    std::size_t payloadOff;
    std::size_t payloadLen;
};

/** Best-effort frame walk (the input is trusted here: a valid base). */
std::vector<Frame>
walkFrames(const std::string &bytes)
{
    std::vector<Frame> frames;
    std::size_t off = 8;
    while (off + 8 <= bytes.size()) {
        const std::uint32_t len = getU32(bytes, off);
        if (bytes.size() - off - 8 < len)
            break;
        frames.push_back({off, off + 8, len});
        off += 8 + len;
    }
    return frames;
}

/** Recompute a frame's CRC after its payload was edited. */
void
fixCrc(std::string &bytes, const Frame &f)
{
    setU32(bytes, f.frameOff + 4,
           crc32(bytes.data() + f.payloadOff, f.payloadLen));
}

/** Replace one section's payload wholesale (re-framed, CRC fixed). */
std::string
spliceSection(const std::string &base, const Frame &f,
              const std::string &payload)
{
    std::string out = base.substr(0, f.frameOff);
    std::string framed;
    for (int i = 0; i < 4; ++i)
        framed.push_back(
            static_cast<char>((payload.size() >> (8 * i)) & 0xFF));
    const std::uint32_t crc = crc32(payload.data(), payload.size());
    for (int i = 0; i < 4; ++i)
        framed.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
    out += framed + payload;
    out += base.substr(f.payloadOff + f.payloadLen);
    return out;
}

/** Flip one payload byte and fix the CRC so the corruption survives
 * the checksum and reaches the structural validators. */
std::string
mutatePayloadByte(const std::string &base, const Frame &f,
                  std::size_t idx, std::uint8_t xor_mask)
{
    std::string out = base;
    out[f.payloadOff + idx] =
        static_cast<char>(out[f.payloadOff + idx] ^ xor_mask);
    fixCrc(out, f);
    return out;
}

/** Fields of the header payload, for targeted count corruption. */
struct HeaderFields
{
    std::string name;
    std::uint8_t group;
    std::uint64_t seed, numRecords, numUops, numCtis;
    std::uint64_t intendedBudget, firstPc, recordsPerBlock;
};

HeaderFields
parseHeaderPayload(const std::string &bytes, const Frame &f)
{
    HeaderFields h{};
    std::size_t off = f.payloadOff;
    const std::uint64_t name_len = readVarint(bytes, off);
    h.name = bytes.substr(off, name_len);
    off += name_len;
    h.group = static_cast<std::uint8_t>(bytes[off++]);
    h.seed = readVarint(bytes, off);
    h.numRecords = readVarint(bytes, off);
    h.numUops = readVarint(bytes, off);
    h.numCtis = readVarint(bytes, off);
    h.intendedBudget = readVarint(bytes, off);
    h.firstPc = readVarint(bytes, off);
    h.recordsPerBlock = readVarint(bytes, off);
    return h;
}

std::string
renderHeaderPayload(const HeaderFields &h)
{
    std::string out;
    writeVarint(out, h.name.size());
    out += h.name;
    out.push_back(static_cast<char>(h.group));
    writeVarint(out, h.seed);
    writeVarint(out, h.numRecords);
    writeVarint(out, h.numUops);
    writeVarint(out, h.numCtis);
    writeVarint(out, h.intendedBudget);
    writeVarint(out, h.firstPc);
    writeVarint(out, h.recordsPerBlock);
    return out;
}

const char *
outcomeName(TraceProbeOutcome o)
{
    switch (o) {
      case TraceProbeOutcome::Accepted: return "Accepted";
      case TraceProbeOutcome::Rejected: return "Rejected";
      case TraceProbeOutcome::Escaped: return "Escaped";
    }
    return "?";
}

std::string
toHex(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const auto b = static_cast<std::uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xF]);
    }
    return out;
}

bool
fromHex(const std::string &hex, std::string &out)
{
    if (hex.size() % 2 != 0)
        return false;
    auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
    };
    out.clear();
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nib(hex[i]), lo = nib(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return true;
}

/** Budget-bounded ddmin over bytes: smallest input keeping `still`. */
std::string
ddminBytes(std::string input,
           const std::function<bool(const std::string &)> &still,
           std::uint64_t probe_budget = 4096)
{
    if (input.empty() || !still(input))
        return input;
    std::size_t n = 2;
    while (input.size() >= 2 && probe_budget > 0) {
        const std::size_t len = input.size();
        const std::size_t chunk = (len + n - 1) / n;
        bool reduced = false;
        for (std::size_t start = 0; start < len && probe_budget > 0;
             start += chunk) {
            std::string cand = input.substr(0, start);
            if (start + chunk < len)
                cand += input.substr(start + chunk);
            --probe_budget;
            if (!cand.empty() && still(cand)) {
                input = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= input.size())
                break;
            n = std::min(input.size(), n * 2);
        }
    }
    return input;
}

} // namespace

// ---------------------------------------------------------------------
// Probe.
// ---------------------------------------------------------------------

TraceProbe
probeTraceBytes(const std::string &bytes)
{
    TraceProbe probe;
    try {
        auto trace = workload::decodeTraceBytes(bytes);
        // Accepted: the decoder vouched for the stream, so replaying it
        // end to end must be infallible and reproduce the declared
        // totals. A violation here is a mis-simulation escape.
        workload::TraceReplaySource src(trace);
        workload::DynInst dyn;
        std::uint64_t records = 0, uops = 0, ctis = 0;
        while (src.next(dyn)) {
            ++records;
            uops += dyn.inst->uops.size();
            if (dyn.inst->isCti())
                ++ctis;
        }
        if (records != trace->numRecords || uops != trace->numUops ||
            ctis != trace->numCtis) {
            probe.outcome = TraceProbeOutcome::Escaped;
            probe.message = "accepted trace replays " +
                            std::to_string(records) + " records / " +
                            std::to_string(uops) + " uops / " +
                            std::to_string(ctis) +
                            " CTIs, not what its header declares";
            return probe;
        }
        probe.outcome = TraceProbeOutcome::Accepted;
        return probe;
    } catch (const TraceFormatError &e) {
        probe.outcome = TraceProbeOutcome::Rejected;
        probe.category = e.category();
        probe.message = e.what();
        return probe;
    } catch (const std::exception &e) {
        probe.outcome = TraceProbeOutcome::Escaped;
        probe.message = std::string("decoder leaked a foreign "
                                    "exception: ") +
                        e.what();
        return probe;
    }
}

// ---------------------------------------------------------------------
// Corpus text format.
// ---------------------------------------------------------------------

std::string
renderTraceCorpus(const TraceCorpusEntry &entry)
{
    std::ostringstream out;
    out << "parrot-ptrace-corpus v1\n";
    if (!entry.comment.empty()) {
        std::istringstream lines(entry.comment);
        std::string line;
        while (std::getline(lines, line))
            out << "# " << line << "\n";
    }
    out << "error " << workload::traceErrorName(entry.category) << "\n";
    out << "bytes " << toHex(entry.bytes) << "\n";
    return out.str();
}

bool
parseTraceCorpus(const std::string &text, TraceCorpusEntry &out,
                 std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "parrot-ptrace-corpus v1")
        return fail("missing 'parrot-ptrace-corpus v1' header");
    out = TraceCorpusEntry{};
    bool have_error = false, have_bytes = false;
    std::string comment;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::string c = line.substr(line.size() > 1 &&
                                                line[1] == ' '
                                            ? 2
                                            : 1);
            comment += comment.empty() ? c : "\n" + c;
            continue;
        }
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "error") {
            std::string name;
            fields >> name;
            out.category = workload::traceErrorFromName(name);
            if (out.category == TraceError::NumErrors)
                return fail("unknown error category '" + name + "'");
            have_error = true;
        } else if (key == "bytes") {
            std::string hex;
            fields >> hex;
            if (!fromHex(hex, out.bytes))
                return fail("malformed hex on 'bytes' line");
            have_bytes = true;
        } else {
            return fail("unknown directive '" + key + "'");
        }
    }
    if (!have_error || !have_bytes)
        return fail("corpus file needs both 'error' and 'bytes' lines");
    out.comment = comment;
    return true;
}

bool
loadTraceCorpusFile(const std::string &path, TraceCorpusEntry &out,
                    std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseTraceCorpus(buf.str(), out, error);
}

bool
writeTraceCorpusFile(const std::string &path,
                     const TraceCorpusEntry &entry)
{
    return atomic_file::writeFileAtomic(path, renderTraceCorpus(entry));
}

// ---------------------------------------------------------------------
// Minimization and replay.
// ---------------------------------------------------------------------

std::string
ddminReject(const std::string &bytes, TraceError category)
{
    return ddminBytes(bytes, [category](const std::string &cand) {
        const TraceProbe p = probeTraceBytes(cand);
        return p.outcome == TraceProbeOutcome::Rejected &&
               p.category == category;
    });
}

TraceReplayResult
replayTraceCorpusDir(const std::string &dir)
{
    TraceReplayResult result;
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &de :
         std::filesystem::directory_iterator(dir, ec)) {
        if (de.path().extension() == ".trace")
            files.push_back(de.path().string());
    }
    std::sort(files.begin(), files.end());
    for (const auto &file : files) {
        ++result.total;
        TraceCorpusEntry entry;
        std::string error;
        if (!loadTraceCorpusFile(file, entry, &error)) {
            ++result.failed;
            result.reports.push_back(file + ": " + error);
            continue;
        }
        const TraceProbe p = probeTraceBytes(entry.bytes);
        if (p.outcome != TraceProbeOutcome::Rejected ||
            p.category != entry.category) {
            ++result.failed;
            result.reports.push_back(
                file + ": expected rejection with category " +
                workload::traceErrorName(entry.category) + ", got " +
                outcomeName(p.outcome) +
                (p.outcome == TraceProbeOutcome::Rejected
                     ? std::string(" / ") +
                           workload::traceErrorName(p.category)
                     : std::string()) +
                (p.message.empty() ? "" : " (" + p.message + ")"));
        }
    }
    return result;
}

// ---------------------------------------------------------------------
// Base trace and targeted seeds.
// ---------------------------------------------------------------------

std::string
makeTinyTraceBytes(std::uint64_t seed, std::uint64_t records)
{
    PARROT_ASSERT(records > 0, "makeTinyTraceBytes: zero records");
    workload::AppProfile p;
    p.name = "fuzz-tiny";
    p.seed = seed;
    p.numHotProcs = 1;
    p.numColdProcs = 2;
    p.blocksPerProc = 4;
    p.avgBlockInsts = 3.0;
    auto prog = workload::generateProgram(p);
    workload::Executor ex(*prog, p);
    workload::TraceWriter writer(*prog, p, records);
    workload::DynInst dyn;
    for (std::uint64_t i = 0; i < records; ++i) {
        const bool ok = ex.next(dyn);
        PARROT_ASSERT(ok, "tiny generator stream ended");
        writer.append(dyn);
    }
    return writer.finish();
}

std::vector<TraceCorpusEntry>
craftRejectionSeeds(const std::string &valid)
{
    const auto frames = walkFrames(valid);
    PARROT_ASSERT(frames.size() >= 3,
                  "craftRejectionSeeds: base trace has %zu sections "
                  "(need header+program+records)",
                  frames.size());
    const Frame &header = frames[0];
    const Frame &program = frames[1];
    const Frame &block = frames[2];

    std::vector<TraceCorpusEntry> seeds;
    auto add = [&](TraceError cat, std::string bytes,
                   const char *how) {
        seeds.push_back({cat, std::move(bytes), how});
    };

    add(TraceError::Empty, "", "zero-length file");

    {
        std::string b = valid;
        b[0] = static_cast<char>(b[0] ^ 0xFF);
        add(TraceError::BadMagic, std::move(b),
            "first magic byte flipped");
    }
    {
        std::string b = valid;
        b[4] = 0x7F; // version 0x007F
        add(TraceError::BadVersion, std::move(b),
            "format version forced to 127");
    }
    {
        std::string b = valid;
        b[6] = 0x01;
        add(TraceError::BadReserved, std::move(b),
            "reserved header byte set");
    }
    add(TraceError::TruncatedHeader, valid.substr(0, 12),
        "file cut inside the header section framing");
    add(TraceError::HeaderCrc,
        [&] {
            std::string b = valid;
            b[header.payloadOff] =
                static_cast<char>(b[header.payloadOff] ^ 0x01);
            return b;
        }(),
        "header payload byte flipped without fixing the CRC");
    add(TraceError::BadHeader,
        mutatePayloadByte(valid, header, 0,
                          static_cast<std::uint8_t>(
                              valid[header.payloadOff])),
        "application-name length zeroed, CRC fixed up");
    {
        // A header whose first varint never terminates (10 bytes with
        // the continuation bit set), CRC valid so it reaches the field
        // parser.
        add(TraceError::VarintOverrun,
            spliceSection(valid, header, std::string(10, '\x80')),
            "header replaced by an unterminated varint, CRC fixed up");
    }
    add(TraceError::TruncatedProgram,
        valid.substr(0, program.payloadOff + program.payloadLen / 2),
        "file cut midway through the program section");
    add(TraceError::ProgramCrc,
        [&] {
            std::string b = valid;
            b[program.payloadOff] =
                static_cast<char>(b[program.payloadOff] ^ 0x01);
            return b;
        }(),
        "program payload byte flipped without fixing the CRC");
    add(TraceError::BadProgram,
        mutatePayloadByte(valid, program, 0,
                          static_cast<std::uint8_t>(
                              valid[program.payloadOff])),
        "procedure count zeroed, CRC fixed up");
    add(TraceError::TruncatedRecords,
        valid.substr(0, block.payloadOff + block.payloadLen / 2),
        "file cut midway through a record block");
    add(TraceError::RecordCrc,
        [&] {
            std::string b = valid;
            b[block.payloadOff] =
                static_cast<char>(b[block.payloadOff] ^ 0x01);
            return b;
        }(),
        "record block byte flipped without fixing the CRC");
    add(TraceError::BadRecord,
        mutatePayloadByte(valid, block, 0,
                          static_cast<std::uint8_t>(
                              valid[block.payloadOff])),
        "record-block record count zeroed, CRC fixed up");
    {
        // Declares one more uop than the records contain.
        HeaderFields h = parseHeaderPayload(valid, header);
        h.numUops += 1;
        add(TraceError::CountMismatch,
            spliceSection(valid, header, renderHeaderPayload(h)),
            "header declares one more uop than the records contain");
    }
    add(TraceError::TrailingBytes, valid + '\0',
        "one garbage byte appended after the final record block");

    return seeds;
}

// ---------------------------------------------------------------------
// Campaign.
// ---------------------------------------------------------------------

TraceDecoderFuzzer::TraceDecoderFuzzer(const TraceFuzzOptions &options)
    : opts(options)
{}

TraceFuzzStats
TraceDecoderFuzzer::run()
{
    TraceFuzzStats stats;
    Rng rng(opts.seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);

    const std::string base =
        makeTinyTraceBytes(opts.seed, opts.records);
    {
        const TraceProbe p = probeTraceBytes(base);
        PARROT_ASSERT(p.outcome == TraceProbeOutcome::Accepted,
                      "fuzzer base trace does not decode: %s",
                      p.message.c_str());
    }
    const auto frames = walkFrames(base);

    std::array<bool,
               static_cast<std::size_t>(TraceError::NumErrors)>
        dumped{};

    auto recordRejection = [&](const std::string &bytes,
                               const TraceProbe &p,
                               const char *provenance) {
        ++stats.rejected;
        ++stats.byCategory[static_cast<std::size_t>(p.category)];
        auto &was = dumped[static_cast<std::size_t>(p.category)];
        if (!opts.corpusDir.empty() && !was) {
            was = true;
            TraceCorpusEntry entry;
            entry.category = p.category;
            entry.bytes = ddminReject(bytes, p.category);
            entry.comment = std::string(provenance) +
                            "\nrejected: " + p.message;
            const std::string file =
                opts.corpusDir + "/" +
                workload::traceErrorName(p.category) + ".trace";
            if (writeTraceCorpusFile(file, entry))
                ++stats.corpusWritten;
            if (opts.verbose) {
                std::fprintf(stderr,
                             "[trace-fuzz] corpus %s (%zu bytes)\n",
                             file.c_str(), entry.bytes.size());
            }
        }
    };

    auto probeInput = [&](const std::string &bytes,
                          const char *provenance,
                          TraceError expect = TraceError::NumErrors) {
        if (stats.failures.size() >= opts.maxFailures)
            return;
        ++stats.iterations;
        const TraceProbe p = probeTraceBytes(bytes);
        switch (p.outcome) {
          case TraceProbeOutcome::Accepted:
            ++stats.accepted;
            if (expect != TraceError::NumErrors) {
                stats.failures.push_back(
                    {std::string("targeted ") +
                         workload::traceErrorName(expect) +
                         " seed (" + provenance +
                         ") was accepted by the decoder",
                     "", bytes});
            }
            break;
          case TraceProbeOutcome::Rejected:
            if (expect != TraceError::NumErrors &&
                p.category != expect) {
                stats.failures.push_back(
                    {std::string("targeted ") +
                         workload::traceErrorName(expect) +
                         " seed (" + provenance +
                         ") was rejected as " +
                         workload::traceErrorName(p.category) + ": " +
                         p.message,
                     "", bytes});
                break;
            }
            recordRejection(bytes, p, provenance);
            break;
          case TraceProbeOutcome::Escaped:
            stats.failures.push_back(
                {std::string("decoder escape on ") + provenance +
                     ": " + p.message,
                 "", bytes});
            break;
        }
    };

    // Phase 1: targeted per-category seeds (guarantees the corpus
    // covers every byte-reachable rejection category).
    for (const auto &seed : craftRejectionSeeds(base))
        probeInput(seed.bytes, seed.comment.c_str(), seed.category);

    // Phase 2: random structural mutations.
    while (stats.iterations < opts.iterations &&
           stats.failures.size() < opts.maxFailures) {
        std::string mutant = base;
        switch (rng.below(6)) {
          case 0: { // flip a random byte anywhere
            const std::size_t i = rng.below(mutant.size());
            mutant[i] = static_cast<char>(
                mutant[i] ^ (1u << rng.below(8)));
            break;
          }
          case 1: // truncate at a random point
            mutant.resize(rng.below(mutant.size()));
            break;
          case 2: { // zero a random run
            const std::size_t i = rng.below(mutant.size());
            const std::size_t n = std::min<std::size_t>(
                mutant.size() - i, 1 + rng.below(16));
            std::fill_n(mutant.begin() + i, n, '\0');
            break;
          }
          case 3: { // insert random bytes
            const std::size_t i = rng.below(mutant.size());
            std::string junk;
            const std::size_t count = 1 + rng.below(8);
            for (std::size_t k = 0; k < count; ++k)
                junk.push_back(static_cast<char>(rng.below(256)));
            mutant.insert(i, junk);
            break;
          }
          case 4: { // duplicate a random run
            const std::size_t i = rng.below(mutant.size());
            const std::size_t n = std::min<std::size_t>(
                mutant.size() - i, 1 + rng.below(64));
            mutant.insert(i, mutant.substr(i, n));
            break;
          }
          default: { // mutate a section payload and fix its CRC, so
                     // the corruption reaches the deep validators
            if (frames.empty())
                continue;
            const Frame &f = frames[rng.below(frames.size())];
            if (f.payloadLen == 0)
                continue;
            mutant = mutatePayloadByte(
                base, f, rng.below(f.payloadLen),
                static_cast<std::uint8_t>(1 + rng.below(255)));
            break;
          }
        }
        probeInput(mutant, "random mutation");
    }

    for (std::size_t i = 0; i < stats.byCategory.size(); ++i)
        if (stats.byCategory[i] > 0)
            ++stats.categoriesCovered;
    return stats;
}

} // namespace parrot::verify
