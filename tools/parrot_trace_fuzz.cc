/**
 * @file
 * parrot_trace_fuzz — fuzzing harness for the `.ptrace` decoder, as a
 * CLI tool for CI and interactive bug hunting.
 *
 * The campaign builds a tiny valid recording, feeds the decoder one
 * targeted corruption per rejection category plus random structural
 * mutations (including CRC-fixed-up payload corruption that reaches
 * the deep validators), and demands that every input is either
 * accepted (and then replays exactly what its header declares) or
 * rejected with a TraceFormatError — never a crash, hang, foreign
 * exception or silent mis-simulation.
 *
 * Usage:
 *   parrot_trace_fuzz [options]
 *     --iterations N   total inputs to probe (default 500)
 *     --seed N         campaign seed (default 1); fixed seed = fully
 *                      deterministic campaign
 *     --records N      dynamic records in the base recording (default
 *                      64)
 *     --corpus-dir DIR dump one ddmin-minimized rejection exemplar per
 *                      category here
 *     --replay DIR     replay every *.trace corpus file in DIR instead
 *                      of fuzzing (regression mode); exits 1 when any
 *                      entry is no longer rejected with its recorded
 *                      category
 *     --verbose        narrate corpus dumps and failures
 *
 * Exit status: 0 when the campaign (or replay) is clean, 1 when any
 * decoder bug was found, 2 on bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    verify::TraceFuzzOptions opts;
    std::string replay_dir;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--iterations")) {
            opts.iterations = std::strtoull(need_value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--seed")) {
            opts.seed = std::strtoull(need_value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--records")) {
            opts.records = std::strtoull(need_value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--corpus-dir")) {
            opts.corpusDir = need_value(i);
        } else if (!std::strcmp(arg, "--replay")) {
            replay_dir = need_value(i);
        } else if (!std::strcmp(arg, "--verbose")) {
            opts.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            return 2;
        }
    }

    if (!replay_dir.empty()) {
        const auto result = verify::replayTraceCorpusDir(replay_dir);
        for (const auto &report : result.reports)
            std::fprintf(stderr, "REPLAY FAIL %s\n", report.c_str());
        std::printf("replayed %u corpus file(s), %u failure(s)\n",
                    result.total, result.failed);
        if (result.total == 0) {
            std::fprintf(stderr, "no *.trace files under %s\n",
                         replay_dir.c_str());
            return 2;
        }
        return result.failed == 0 ? 0 : 1;
    }

    verify::TraceDecoderFuzzer fuzzer(opts);
    const auto stats = fuzzer.run();

    std::printf("probed %llu input(s): %llu accepted, %llu rejected "
                "across %zu categories; %zu corpus file(s) written\n",
                static_cast<unsigned long long>(stats.iterations),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                stats.categoriesCovered, stats.corpusWritten);
    for (std::size_t i = 0; i < stats.byCategory.size(); ++i) {
        if (stats.byCategory[i] == 0)
            continue;
        std::printf("  %-18s %llu\n",
                    workload::traceErrorName(
                        static_cast<workload::TraceError>(i)),
                    static_cast<unsigned long long>(
                        stats.byCategory[i]));
    }
    for (const auto &failure : stats.failures)
        std::fprintf(stderr, "FAILURE: %s\n", failure.why.c_str());

    if (!stats.clean()) {
        std::fprintf(stderr, "%zu decoder bug(s) found\n",
                     stats.failures.size());
        return 1;
    }
    std::printf("campaign clean\n");
    return 0;
}
