/**
 * @file
 * Multi-process sharded campaign coordinator.
 *
 * Runs the (model x application) grid across worker processes that
 * claim cells dynamically and journal into per-worker shards; the
 * coordinator merges everything into one result cache that is
 * byte-identical to a serial run (see sim/campaign.hh for the process
 * model). Typical use:
 *
 *   parrot_campaign --workers 4 --jobs 2 --insts 600000
 *
 * Exit status: 0 = every cell computed and healthy; 3 = degraded
 * results (cells still missing after the rounds ran out, or recorded
 * only as tombstones); 2 = usage error. Exit 1 is reserved for
 * correctness alarms and is never produced by an incomplete grid.
 */

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "sim/campaign.hh"
#include "sim/model_config.hh"
#include "workload/apps.hh"

using namespace parrot;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --workers N       worker processes (default 1 = in-process)\n"
        "  --jobs N          simulation threads per worker (default: "
        "PARROT_JOBS or hardware)\n"
        "  --insts N         instruction budget per cell (default "
        "600000)\n"
        "  --models A,B,..   models to sweep (default: all seven)\n"
        "  --apps a,b,..     applications to sweep (default: the full "
        "44-app suite)\n"
        "  --small           sweep the reduced representative suite\n"
        "  --cache PATH      result cache file (default "
        "parrot_bench_cache.txt)\n"
        "  --deadline-ms N   per-cell wall-clock watchdog\n"
        "  --checkpoint-dir D  save/resume per-cell warm-state "
        "checkpoints in D\n"
        "  --retries N       attempts before a cell is tombstoned\n"
        "  --max-rounds N    worker respawn rounds (default 5)\n"
        "  --no-leakage      skip the Pmax calibration (leakage = 0)\n"
        "  --quiet           suppress per-cell progress\n",
        argv0);
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= list.size()) {
        auto comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::CampaignOptions opts;
    opts.run.instBudget = 600000;
    if (const char *env = std::getenv("PARROT_BENCH_INSTS"))
        opts.run.instBudget = cli::parseU64("PARROT_BENCH_INSTS", env);
    sim::applyRunOptionsEnv(opts.run);

    bool small = false;
    std::vector<std::string> app_names;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--workers")) {
            opts.workers =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--jobs")) {
            opts.run.jobs =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--insts")) {
            opts.run.instBudget =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--models")) {
            opts.models = splitCommas(cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--apps")) {
            app_names = splitCommas(cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--small")) {
            small = true;
        } else if (!std::strcmp(arg, "--cache")) {
            opts.cachePath = cli::needValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--deadline-ms")) {
            opts.run.deadlineMs =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--checkpoint-dir")) {
            opts.run.checkpointDir = cli::needValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--retries")) {
            opts.run.maxRetries =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--max-rounds")) {
            opts.maxRounds =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--no-leakage")) {
            opts.run.noLeakage = true;
        } else if (!std::strcmp(arg, "--quiet")) {
            opts.verbose = false;
        } else if (!std::strcmp(arg, "--help") ||
                   !std::strcmp(arg, "-h")) {
            usage(argv[0]);
            return cli::kExitOk;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            usage(argv[0]);
            return cli::kExitUsage;
        }
    }

    // Validate model names up front: a typo should be a usage error
    // here, not a fatal() deep inside a forked worker.
    const auto known = sim::ModelConfig::allNames();
    const std::set<std::string> known_set(known.begin(), known.end());
    for (const auto &model : opts.models) {
        if (!known_set.count(model)) {
            std::fprintf(stderr, "unknown model '%s'\n", model.c_str());
            return cli::kExitUsage;
        }
    }
    if (small && !app_names.empty()) {
        std::fprintf(stderr, "--small and --apps are exclusive\n");
        return cli::kExitUsage;
    }
    if (small)
        opts.suite = workload::smallSuite();
    std::set<std::string> known_apps;
    for (const auto &entry : workload::fullSuite())
        known_apps.insert(entry.profile.name);
    for (const auto &name : app_names) {
        if (!known_apps.count(name)) {
            std::fprintf(stderr, "unknown application '%s'\n",
                         name.c_str());
            return cli::kExitUsage;
        }
        opts.suite.push_back(workload::findApp(name));
    }
    if (opts.maxRounds == 0) {
        std::fprintf(stderr, "--max-rounds must be >= 1\n");
        return cli::kExitUsage;
    }

    sim::CampaignReport report = sim::runCampaign(opts);
    std::printf("campaign: %zu cell(s) total, %zu cached, %zu ran, "
                "%zu missing, %zu tombstone(s); %u round(s), "
                "%u worker death(s)%s\n",
                report.totalCells, report.cachedCells, report.ranCells,
                report.missingCells, report.tombstones, report.rounds,
                report.workerDeaths,
                report.converged ? "" : " [NOT CONVERGED]");
    return report.exitCode();
}
