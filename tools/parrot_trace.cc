/**
 * @file
 * parrot_trace — inspect, validate and record `.ptrace` files.
 *
 * Usage:
 *   parrot_trace record --app NAME --insts N --out FILE [--seed-only]
 *       record one generator application's committed stream
 *   parrot_trace info FILE
 *       print the header summary (app, seed, counts, budget, blocks)
 *   parrot_trace validate FILE
 *       fully decode + validate; prints "ok" and the summary line
 *   parrot_trace stats FILE
 *       per-section byte accounting and compression figures
 *
 * Exit status: 0 on success, 1 on an internal failure, 2 on bad usage
 * or a malformed trace file (every TraceFormatError lands here with
 * its stable category name on stderr).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "parrot/parrot.hh"

namespace
{

using namespace parrot;

void
printSummary(const workload::TraceData &t, const std::string &path)
{
    std::printf("%s: app=%s group=%s seed=%llu version=%u\n",
                path.c_str(), t.appName.c_str(),
                workload::benchGroupName(t.group),
                static_cast<unsigned long long>(t.seed),
                workload::ptraceVersion);
    std::printf("  records=%llu uops=%llu ctis=%llu "
                "intended_budget=%llu first_pc=0x%llx\n",
                static_cast<unsigned long long>(t.numRecords),
                static_cast<unsigned long long>(t.numUops),
                static_cast<unsigned long long>(t.numCtis),
                static_cast<unsigned long long>(t.intendedBudget),
                static_cast<unsigned long long>(t.firstPc));
    std::printf("  blocks=%zu records_per_block=%u file_bytes=%zu\n",
                t.blocks.size(), t.recordsPerBlock, t.bytes.size());
}

int
cmdInfo(const std::string &path, bool validate_banner)
{
    auto trace = workload::loadTraceFile(path);
    if (validate_banner)
        std::printf("ok: %s decodes and validates clean\n",
                    path.c_str());
    printSummary(*trace, path);
    return 0;
}

int
cmdStats(const std::string &path)
{
    auto trace = workload::loadTraceFile(path);
    printSummary(*trace, path);
    std::uint64_t record_bytes = 0, bits_bytes = 0;
    for (const auto &blk : trace->blocks) {
        record_bytes += blk.recordsLen;
        bits_bytes += (blk.numCtis + 7) / 8;
    }
    const double per_record =
        static_cast<double>(record_bytes + bits_bytes) /
        static_cast<double>(trace->numRecords);
    std::printf("  stream bytes: %llu record + %llu branch-bitstream "
                "(%.3f bytes/record)\n",
                static_cast<unsigned long long>(record_bytes),
                static_cast<unsigned long long>(bits_bytes),
                per_record);
    std::printf("  raw DynInst stream would be %llu bytes "
                "(compression %.1fx)\n",
                static_cast<unsigned long long>(
                    trace->numRecords * sizeof(workload::DynInst)),
                static_cast<double>(trace->numRecords *
                                    sizeof(workload::DynInst)) /
                    static_cast<double>(trace->bytes.size()));
    return 0;
}

int
cmdRecord(int argc, char **argv)
{
    std::string app = "swim";
    std::string out;
    std::uint64_t insts = 300000;
    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(arg, "--app")) {
            app = value();
        } else if (!std::strcmp(arg, "--insts")) {
            insts = std::strtoull(value(), nullptr, 10);
        } else if (!std::strcmp(arg, "--out")) {
            out = value();
        } else {
            std::fprintf(stderr, "unknown record option '%s'\n", arg);
            return 2;
        }
    }
    if (out.empty()) {
        std::fprintf(stderr, "record needs --out FILE\n");
        return 2;
    }
    auto stats =
        workload::recordTrace(workload::findApp(app), insts, out);
    std::printf("recorded %s: %llu records (%llu uops, %llu CTIs) for "
                "a %llu-inst budget, %llu bytes\n",
                stats.path.c_str(),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.uops),
                static_cast<unsigned long long>(stats.ctis),
                static_cast<unsigned long long>(stats.intendedBudget),
                static_cast<unsigned long long>(stats.fileBytes));
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: parrot_trace record --app NAME --insts N "
                 "--out FILE\n"
                 "       parrot_trace info FILE\n"
                 "       parrot_trace validate FILE\n"
                 "       parrot_trace stats FILE\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "record")
            return cmdRecord(argc, argv);
        if (argc != 3)
            return usage();
        if (cmd == "info")
            return cmdInfo(argv[2], false);
        if (cmd == "validate")
            return cmdInfo(argv[2], true);
        if (cmd == "stats")
            return cmdStats(argv[2]);
        return usage();
    } catch (const workload::TraceFormatError &e) {
        std::fprintf(stderr, "%s: %s\n",
                     workload::traceErrorName(e.category()), e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
