/**
 * @file
 * parrot_fuzz — the coverage-guided differential fuzzer for the trace
 * optimizer, as a CLI tool for CI and interactive bug hunting.
 *
 * Usage:
 *   parrot_fuzz [options]
 *     --iterations N      fuzzing iterations (default 1000)
 *     --seed N            campaign seed (default 1); a fixed seed makes
 *                         the whole campaign deterministic
 *     --max-uops N        cap generated trace length (default 64)
 *     --seeds-per-check N equivalence initial states per input
 *                         (default 8)
 *     --corpus-dir DIR    dump minimized failing traces here
 *     --replay DIR        replay every *.trace file in DIR instead of
 *                         fuzzing (regression mode); exits 1 when any
 *                         corpus entry fails its check again
 *     --inject-dce-bug    deliberately break dead-code elimination (the
 *                         oracle-validation hook); the campaign is then
 *                         EXPECTED to find failures
 *     --verbose           print each failure as it is found
 *
 * Exit status: 0 when the campaign (or replay) is clean, 1 when any
 * failure was found, 2 on bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    verify::FuzzOptions opts;
    std::string replay_dir;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--iterations")) {
            opts.iterations = std::strtoull(need_value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--seed")) {
            opts.seed = std::strtoull(need_value(i), nullptr, 10);
        } else if (!std::strcmp(arg, "--max-uops")) {
            opts.maxUops = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (!std::strcmp(arg, "--seeds-per-check")) {
            opts.seedsPerCheck = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (!std::strcmp(arg, "--corpus-dir")) {
            opts.corpusDir = need_value(i);
        } else if (!std::strcmp(arg, "--replay")) {
            replay_dir = need_value(i);
        } else if (!std::strcmp(arg, "--inject-dce-bug")) {
            opts.base.debugBreakDce = true;
        } else if (!std::strcmp(arg, "--verbose")) {
            opts.verbose = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            return 2;
        }
    }

    if (!replay_dir.empty()) {
        auto result = verify::replayCorpusDir(replay_dir, opts.base,
                                              opts.seedsPerCheck);
        for (const auto &line : result.reports)
            std::fprintf(stderr, "parrot_fuzz: replay FAIL %s\n",
                         line.c_str());
        std::printf("parrot_fuzz replay: %u corpus files, %u failed\n",
                    result.total, result.failed);
        return result.failed == 0 ? 0 : 1;
    }

    verify::TraceFuzzer fuzzer(opts);
    auto stats = fuzzer.run();

    std::printf(
        "parrot_fuzz: %llu iterations (%llu harvested, %llu mutated, "
        "%llu synthesized)\n",
        static_cast<unsigned long long>(stats.iterations),
        static_cast<unsigned long long>(stats.harvested),
        static_cast<unsigned long long>(stats.mutated),
        static_cast<unsigned long long>(stats.synthesized));
    std::printf(
        "parrot_fuzz: coverage %zu opcode pairs, %zu pass outcomes; "
        "%llu coverage inputs, pool %zu; %llu equivalence checks\n",
        stats.opcodePairsCovered, stats.passOutcomesCovered,
        static_cast<unsigned long long>(stats.coverageInputs),
        stats.poolSize,
        static_cast<unsigned long long>(stats.equivalenceChecks));

    for (const auto &fail : stats.failures) {
        std::printf("parrot_fuzz: FAILURE %s (minimized %zu -> %zu "
                    "uops)%s%s\n",
                    fail.entry.comment.c_str(), fail.originalUops,
                    fail.entry.uops.size(),
                    fail.file.empty() ? "" : ", corpus: ",
                    fail.file.c_str());
    }
    std::printf("parrot_fuzz: %zu failure(s)\n", stats.failures.size());
    return stats.clean() ? 0 : 1;
}
