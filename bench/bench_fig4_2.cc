/**
 * @file
 * Figure 4.2 — increased energy consumption over the baseline of the
 * same width.
 *
 * Paper shape: every extension of the wide machine *saves* energy (the
 * base W is vastly inefficient); relative to the narrow machine only
 * TW shows a significant increase (~12%), while TON stays within a few
 * percent of N.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.2: energy increase over baseline of same width",
        {{"TN", "N"}, {"TON", "N"}, {"TW", "W"}, {"TOW", "W"}}, store,
        suite, [](const sim::SimResult &r) { return r.totalEnergy; },
        /*as_percent_delta=*/true, /*with_killers=*/true);
    return store.exitCode();
}
