/**
 * @file
 * Figure 4.8 — trace-cache coverage: the fraction of committed
 * instructions delivered by the trace cache on the TON model.
 *
 * Paper shape: ~90% for the regular SpecFP applications, 60-70% for
 * the control-intensive SpecInt codes, with the other groups between.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();

    bench::printAbsoluteFigure(
        "Figure 4.8: trace-cache coverage (fraction of instructions)",
        {"TON", "TOW"}, store, suite,
        [](const sim::SimResult &r) {
            return std::max(r.coverage, 1e-6);
        },
        3);

    // Per-application detail, sorted like the paper's bar chart.
    auto results = store.getSuite("TON", suite);
    stats::TextTable table;
    table.addRow({"app", "group", "coverage", "traces", "aborts"});
    for (const auto &r : results) {
        const std::string group = workload::benchGroupName(
            workload::findApp(r.app).profile.group);
        if (r.tombstone) {
            table.addRow({r.app, group, "-", "-", "-"});
            continue;
        }
        table.addRow({
            r.app,
            group,
            stats::TextTable::num(r.coverage, 3),
            std::to_string(r.tracesInserted),
            std::to_string(r.traceMispredicts),
        });
    }
    std::printf("Per-application coverage (TON)\n%s\n",
                table.render().c_str());
    return store.exitCode();
}
