/**
 * @file
 * Figure 4.4 — IPC of the extreme design points relative to the 4-wide
 * baseline N.
 *
 * Paper shape: widening helps (W ~ +15%); TON slightly outperforms W
 * at a fraction of its energy; the full TOW reaches ~+45% over N. TOS
 * is the conceptual split-core reference.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.4: IPC relative to the 4-wide baseline N",
        {{"W", "N"}, {"TON", "N"}, {"TOW", "N"}, {"TOS", "N"}}, store,
        suite, [](const sim::SimResult &r) { return r.ipc; },
        /*as_percent_delta=*/true, /*with_killers=*/false);
    return store.exitCode();
}
