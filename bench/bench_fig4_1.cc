/**
 * @file
 * Figure 4.1 — IPC improvement over the baseline of the same width.
 *
 * Paper shape: TN gains a negligible ~2% over N (the narrow machine
 * stays balanced), TW gains ~7% over W, while the optimizing models
 * jump: TON ~+17% over N and TOW ~+25% over W. The killer apps (flash,
 * wupwise, perlbench) show the largest improvements.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.1: IPC improvement over baseline of same width",
        {{"TN", "N"}, {"TON", "N"}, {"TW", "W"}, {"TOW", "W"}}, store,
        suite, [](const sim::SimResult &r) { return r.ipc; },
        /*as_percent_delta=*/true, /*with_killers=*/true);
    return store.exitCode();
}
