/**
 * @file
 * Table 3.2 — the microarchitectural settings of the seven models.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "sim/model_config.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    stats::TextTable table;
    table.addRow({"model", "fetch", "decode", "core", "ROB", "IQ",
                  "bp", "tc-frames", "tp", "hot-thr", "blaze-thr",
                  "optimizer", "areaK"});
    for (const auto &name : sim::ModelConfig::allNames()) {
        auto cfg = sim::ModelConfig::make(name);
        std::string core = std::to_string(cfg.coldCore.width) + "-wide";
        if (cfg.splitCore) {
            core += "+" + std::to_string(cfg.hotCore.width) +
                    "-wide split";
        }
        table.addRow({
            name,
            std::to_string(cfg.decoder.fetchBytes) + "B/cyc",
            std::to_string(cfg.decoder.width) + "/cyc",
            core,
            std::to_string(cfg.coldCore.robSize),
            std::to_string(cfg.coldCore.iqSize),
            std::to_string(cfg.branchPredictor.numEntries),
            cfg.hasTraceCache
                ? std::to_string(cfg.traceCache.numEntries) : "-",
            cfg.hasTraceCache
                ? std::to_string(cfg.tracePredictor.numEntries) : "-",
            cfg.hasTraceCache
                ? std::to_string(cfg.hotFilter.threshold) : "-",
            cfg.hasTraceCache
                ? std::to_string(cfg.blazeFilter.threshold) : "-",
            cfg.hasOptimizer ? "yes" : "no",
            stats::TextTable::num(cfg.coreAreaFactor, 2),
        });
    }
    std::printf("Table 3.2: microarchitectural settings of the models\n%s",
                table.render().c_str());
    return 0;
}
