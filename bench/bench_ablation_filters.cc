/**
 * @file
 * Ablation — the gradual-filtering thresholds (DESIGN.md §7.3).
 *
 * Sweeps the hot-filter threshold (trace-cache admission) and the
 * blazing threshold (optimizer admission) on the TON model. Low hot
 * thresholds admit noise (more insertions, more aborts); high ones
 * forfeit coverage. Low blazing thresholds waste optimizer energy on
 * cold traces; high ones delay the benefit — the paper's "relaxed
 * optimizer" argument rests on the high reuse beyond this threshold.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    const auto suite = workload::smallSuite();

    sim::RunOptions opts;
    opts.instBudget = bench::benchInstBudget();
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);

    std::printf("Ablation: hot-filter threshold sweep (TON, %zu apps)\n",
                suite.size());
    stats::TextTable hot_table;
    hot_table.addRow({"hot-thr", "coverage", "IPC", "inserted",
                      "abort-rate", "dynE(uJ)"});
    for (unsigned thr : {2u, 4u, 6u, 12u, 24u, 48u}) {
        auto cfg = sim::ModelConfig::make("TON");
        cfg.hotFilter.threshold = thr;
        double cov = 0, ipc = 0, inserted = 0, aborts = 0, preds = 0;
        double energy = 0;
        for (const auto &r : runner.runSuite(cfg, suite)) {
            cov += r.coverage;
            ipc += r.ipc;
            inserted += static_cast<double>(r.tracesInserted);
            aborts += static_cast<double>(r.traceMispredicts);
            preds += static_cast<double>(r.tracePredictions);
            energy += r.dynamicEnergy;
        }
        const double n = static_cast<double>(suite.size());
        hot_table.addRow({
            std::to_string(thr),
            stats::TextTable::num(cov / n, 3),
            stats::TextTable::num(ipc / n, 3),
            stats::TextTable::num(inserted / n, 0),
            stats::TextTable::num(preds > 0 ? aborts / preds : 0.0, 3),
            stats::TextTable::num(energy / n * 1e-6, 2),
        });
    }
    std::printf("%s\n", hot_table.render().c_str());

    std::printf("Ablation: blazing-filter threshold sweep (TON)\n");
    stats::TextTable blaze_table;
    blaze_table.addRow({"blaze-thr", "optimized", "utilization", "IPC",
                        "uop-red(dyn)"});
    for (unsigned thr : {6u, 12u, 24u, 48u, 96u}) {
        auto cfg = sim::ModelConfig::make("TON");
        cfg.blazeFilter.threshold = thr;
        double opt = 0, util = 0, ipc = 0, red = 0;
        for (const auto &r : runner.runSuite(cfg, suite)) {
            opt += static_cast<double>(r.tracesOptimized);
            util += r.optimizerUtilization;
            ipc += r.ipc;
            red += r.dynamicUopReduction;
        }
        const double n = static_cast<double>(suite.size());
        blaze_table.addRow({
            std::to_string(thr),
            stats::TextTable::num(opt / n, 0),
            stats::TextTable::num(util / n, 1),
            stats::TextTable::num(ipc / n, 3),
            stats::TextTable::num(red / n, 3),
        });
    }
    std::printf("%s\n", blaze_table.render().c_str());
    return 0;
}
