/**
 * @file
 * Figure 4.11 — energy breakdown by major component for three models
 * of very different character (baseline N, power-aware narrow TON and
 * the conceptual split-core TOS) on three representative applications
 * (flash, swim, gcc).
 *
 * Paper shape: the front-end's share shrinks dramatically from N to
 * TON to TOS; execution components grow on the wider TOS; the whole
 * trace unit (filters, construction, optimization) costs on the order
 * of 10% of total energy.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;

    static const char *const apps[] = {"flash", "swim", "gcc"};
    static const char *const models[] = {"N", "TON", "TOS"};

    for (const char *app : apps) {
        auto entry = workload::findApp(app);
        std::printf("Figure 4.11: energy breakdown — %s\n", app);
        stats::TextTable table;
        std::vector<std::string> header{"unit"};
        for (const char *m : models)
            header.push_back(m);
        table.addRow(header);

        sim::SimResult results[3];
        for (int m = 0; m < 3; ++m)
            results[m] = store.get(models[m], entry);

        for (unsigned u = 0; u < power::numPowerUnits; ++u) {
            std::vector<std::string> row{
                power::powerUnitName(static_cast<power::PowerUnit>(u))};
            for (int m = 0; m < 3; ++m) {
                if (results[m].tombstone) {
                    row.push_back("-");
                    continue;
                }
                double share =
                    results[m].unitEnergy[u] / results[m].totalEnergy;
                row.push_back(stats::TextTable::num(share * 100.0, 1) +
                              "%");
            }
            table.addRow(row);
        }
        std::vector<std::string> total{"total (uJ)"};
        for (int m = 0; m < 3; ++m) {
            total.push_back(results[m].tombstone
                                ? "-"
                                : stats::TextTable::num(
                                      results[m].totalEnergy * 1e-6, 2));
        }
        table.addRow(total);
        std::printf("%s\n", table.render().c_str());
    }
    return store.exitCode();
}
