/**
 * @file
 * Ablation — optimization classes (the companion-paper breakdown the
 * paper cites in §2.4): none, generic-only (propagation + DCE +
 * promotion) and the full core-specific set (plus fusion,
 * SIMDification, critical-path scheduling) on the TON model.
 *
 * Paper shape: core-specific optimizations "more than double" the
 * gains of the generic ones.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    auto suite = workload::killerApps();
    auto more = workload::smallSuite();
    suite.insert(suite.end(), more.begin(), more.end());
    sim::RunOptions opts;
    opts.instBudget = bench::benchInstBudget();
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);

    struct Variant
    {
        const char *name;
        optimizer::OptimizerConfig cfg;
    };
    const Variant variants[] = {
        {"none", optimizer::OptimizerConfig::disabled()},
        {"generic", optimizer::OptimizerConfig::genericOnly()},
        {"full", optimizer::OptimizerConfig{}},
    };

    std::printf("Ablation: optimization classes on TON (%zu apps)\n",
                suite.size());
    stats::TextTable table;
    table.addRow({"passes", "IPC", "uop-red(dyn)", "dep-red",
                  "dynE(uJ)"});
    for (const auto &variant : variants) {
        auto cfg = sim::ModelConfig::make("TON");
        cfg.optimizer = variant.cfg;
        double ipc = 0, red = 0, dep = 0, energy = 0;
        for (const auto &r : runner.runSuite(cfg, suite)) {
            ipc += r.ipc;
            red += r.dynamicUopReduction;
            dep += r.avgDepReduction;
            energy += r.dynamicEnergy;
        }
        const double n = static_cast<double>(suite.size());
        table.addRow({
            variant.name,
            stats::TextTable::num(ipc / n, 3),
            stats::TextTable::num(red / n, 3),
            stats::TextTable::num(dep / n, 3),
            stats::TextTable::num(energy / n * 1e-6, 2),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
