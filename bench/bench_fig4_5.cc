/**
 * @file
 * Figure 4.5 — total energy relative to the 4-wide baseline N.
 *
 * Paper shape: W consumes ~60-70% more energy than N; TON consumes
 * ~39% less than W (about N's level); TOW sits well below W.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.5: total energy relative to the 4-wide baseline N",
        {{"W", "N"}, {"TON", "N"}, {"TOW", "N"}, {"TOS", "N"}}, store,
        suite, [](const sim::SimResult &r) { return r.totalEnergy; },
        /*as_percent_delta=*/true, /*with_killers=*/false);

    // The paper's headline cross-comparison: TON against W.
    bench::printRelativeFigure(
        "Cross-check: TON vs W (paper: ~39% lower energy, similar IPC)",
        {{"TON", "W"}}, store, suite,
        [](const sim::SimResult &r) { return r.totalEnergy; },
        /*as_percent_delta=*/true, /*with_killers=*/false);
    return store.exitCode();
}
