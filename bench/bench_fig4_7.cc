/**
 * @file
 * Figure 4.7 — front-end predictability: branch misprediction of the
 * baseline N (4K-entry predictor) against the TON model's trace
 * misprediction (hot code) and residual cold-code branch misprediction
 * (2K-entry predictor each).
 *
 * Paper shape: hot-trace misprediction is the lowest, N's branch
 * misprediction sits in the middle, and TON's *cold* branch
 * misprediction is clearly the highest — the predictable code has been
 * siphoned off to the hot pipeline.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();

    auto n_results = store.getSuite("N", suite);
    auto ton_results = store.getSuite("TON", suite);

    // Aggregate rates per group from raw counts (not geomeans: rates
    // can legitimately be zero).
    stats::TextTable table;
    table.addRow({"rate", "SpecInt", "SpecFP", "Office", "Multimedia",
                  "DotNet", "All"});

    auto sum_rates = [&](const std::vector<sim::SimResult> &results,
                         auto numer, auto denom) {
        std::vector<std::string> cells;
        std::uint64_t all_n = 0, all_d = 0;
        for (unsigned g = 0;
             g < static_cast<unsigned>(workload::BenchGroup::NumGroups);
             ++g) {
            std::uint64_t num = 0, den = 0;
            for (const auto &r : results) {
                if (workload::findApp(r.app).profile.group ==
                    static_cast<workload::BenchGroup>(g)) {
                    num += numer(r);
                    den += denom(r);
                }
            }
            all_n += num;
            all_d += den;
            cells.push_back(stats::TextTable::num(
                den ? 100.0 * num / den : 0.0, 2) + "%");
        }
        cells.push_back(stats::TextTable::num(
            all_d ? 100.0 * all_n / all_d : 0.0, 2) + "%");
        return cells;
    };

    auto branch_mis = [](const sim::SimResult &r) {
        return r.coldBranchMispredicts;
    };
    auto branch_all = [](const sim::SimResult &r) {
        return r.coldCondBranches;
    };
    auto trace_mis = [](const sim::SimResult &r) {
        return r.traceMispredicts;
    };
    auto trace_all = [](const sim::SimResult &r) {
        return r.tracePredictions;
    };

    std::printf("Figure 4.7: misprediction rates (N 4K-entry bp vs TON "
                "2K bp + 2K tp)\n");
    auto row = sum_rates(n_results, branch_mis, branch_all);
    row.insert(row.begin(), "N branch mispredict");
    table.addRow(row);
    row = sum_rates(ton_results, trace_mis, trace_all);
    row.insert(row.begin(), "TON trace mispredict (hot)");
    table.addRow(row);
    row = sum_rates(ton_results, branch_mis, branch_all);
    row.insert(row.begin(), "TON branch mispredict (cold)");
    table.addRow(row);
    std::printf("%s\n", table.render().c_str());
    return store.exitCode();
}
