/**
 * @file
 * Shared infrastructure for the figure-reproduction benches.
 *
 * Every bench binary needs the same expensive grid of
 * (model x application) simulations; ResultStore memoizes finished
 * SimResults in a plain-text cache file in the working directory so the
 * first bench pays and the rest reuse. The file is self-describing:
 * a version header lists the exact ordered field keys (from
 * sim::resultFields()) and every record is key=value pairs, so any
 * change to the SimResult schema invalidates the cache wholesale and
 * it silently regenerates. Delete the file (or set
 * PARROT_BENCH_NO_CACHE=1) to force fresh runs. The instruction budget
 * can be overridden with PARROT_BENCH_INSTS.
 *
 * Uncached simulations dispatch onto the suite runner's worker pool;
 * the job count comes from --jobs / PARROT_JOBS (default
 * hardware_concurrency) and never changes the results — see
 * sim::SuiteRunner.
 */

#ifndef PARROT_BENCH_COMMON_BENCH_UTIL_HH
#define PARROT_BENCH_COMMON_BENCH_UTIL_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workload/apps.hh"

namespace parrot::bench
{

/** Instruction budget for bench runs (PARROT_BENCH_INSTS override). */
std::uint64_t benchInstBudget();

/** Worker-pool size for bench runs (PARROT_JOBS override; 0 = auto). */
unsigned benchJobs();

/**
 * Parse the common bench flags every driver accepts and publish them
 * to the environment the helpers above read:
 *   --jobs N    worker threads (PARROT_JOBS)
 *   --insts N   instruction budget (PARROT_BENCH_INSTS)
 *   --no-cache  ignore/skip the result cache (PARROT_BENCH_NO_CACHE)
 * Unknown flags are fatal. Call first thing in main().
 */
void parseBenchArgs(int argc, char **argv);

/**
 * A persistent memo of simulation results keyed by
 * (model, app, instruction budget).
 */
class ResultStore
{
  public:
    /** Opens (and loads) the cache file next to the working dir. */
    explicit ResultStore(const std::string &path = "parrot_bench_cache.txt");

    /** Fetch or compute one result. */
    sim::SimResult get(const std::string &model,
                       const workload::SuiteEntry &entry);

    /**
     * Fetch or compute the full suite for one model. Uncached entries
     * run concurrently on the runner's worker pool; results (and the
     * cache file) are identical to serial runs.
     */
    std::vector<sim::SimResult> getSuite(
        const std::string &model,
        const std::vector<workload::SuiteEntry> &suite);

    /** The calibrated Pmax (cached like any other result). */
    double pmax();

  private:
    std::string keyOf(const std::string &model, const std::string &app,
                      std::uint64_t insts) const;
    void load();
    void append(const std::string &key, const sim::SimResult &r);

    std::string path;
    bool enabled = true;
    std::map<std::string, sim::SimResult> memo;
    sim::SuiteRunner runner;
    bool pmaxReady = false;
    double pmaxValue = 0.0;
};

/** Metric extractor. */
using Metric = std::function<double(const sim::SimResult &)>;

/**
 * Print a paper-style figure: one row per variant model, columns = the
 * five benchmark groups + All (+ optionally the killer apps), each cell
 * the geomean ratio of `metric` between the variant and its baseline.
 *
 * @param title figure caption.
 * @param rows (variant model, baseline model) pairs.
 * @param store result provider.
 * @param suite applications.
 * @param metric the measured quantity.
 * @param as_percent_delta print (ratio-1) as a signed percentage.
 * @param with_killers add flash/wupwise/perlbench columns.
 */
void printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    ResultStore &store, const std::vector<workload::SuiteEntry> &suite,
    const Metric &metric, bool as_percent_delta, bool with_killers);

/**
 * Print an absolute per-group figure: one row per model, cells are
 * geomeans of `metric`.
 */
void printAbsoluteFigure(const std::string &title,
                         const std::vector<std::string> &models,
                         ResultStore &store,
                         const std::vector<workload::SuiteEntry> &suite,
                         const Metric &metric, int precision);

} // namespace parrot::bench

#endif // PARROT_BENCH_COMMON_BENCH_UTIL_HH
