/**
 * @file
 * Shared infrastructure for the figure-reproduction benches.
 *
 * Every bench binary needs the same expensive grid of
 * (model x application) simulations; ResultStore memoizes finished
 * SimResults in a plain-text cache file in the working directory so the
 * first bench pays and the rest reuse. The file is self-describing:
 * a version header lists the exact ordered field keys (from
 * sim::resultFields()) and every record is key=value pairs, so any
 * change to the SimResult schema invalidates the cache wholesale and
 * it silently regenerates. Delete the file (or set
 * PARROT_BENCH_NO_CACHE=1) to force fresh runs. The instruction budget
 * can be overridden with PARROT_BENCH_INSTS.
 *
 * Uncached simulations dispatch onto the suite runner's worker pool;
 * the job count comes from --jobs / PARROT_JOBS (default
 * hardware_concurrency) and never changes the results — see
 * sim::SuiteRunner.
 */

#ifndef PARROT_BENCH_COMMON_BENCH_UTIL_HH
#define PARROT_BENCH_COMMON_BENCH_UTIL_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "sim/runner.hh"
#include "workload/apps.hh"

namespace parrot::bench
{

/** Instruction budget for bench runs (PARROT_BENCH_INSTS override). */
std::uint64_t benchInstBudget();

/** Worker-pool size for bench runs (PARROT_JOBS override; 0 = auto). */
unsigned benchJobs();

/**
 * Parse the common bench flags every driver accepts and publish them
 * to the environment the helpers above read:
 *   --jobs N         worker threads (PARROT_JOBS)
 *   --insts N        instruction budget (PARROT_BENCH_INSTS)
 *   --no-cache       ignore/skip the result cache (PARROT_BENCH_NO_CACHE)
 *   --deadline-ms N  per-cell wall-clock watchdog (PARROT_DEADLINE_MS)
 *   --retries N      attempts for a failed cell before it becomes a
 *                    tombstone (PARROT_RETRIES)
 * Unknown flags are fatal. Call first thing in main().
 */
void parseBenchArgs(int argc, char **argv);

/**
 * A persistent memo of simulation results keyed by
 * (model, app, instruction budget).
 *
 * Durability model: every completed cell is appended to an O_APPEND +
 * fsync journal the moment it finishes (even while the rest of the
 * suite is still running), so a `kill -9` mid-suite loses at most the
 * in-flight cells. On clean destruction the file is compacted — the
 * memo rewritten in sorted key order through an atomic
 * write-temp/fsync/rename — which makes an interrupted-then-resumed
 * run's cache byte-identical to an uninterrupted one. Any persistence
 * failure (read-only dir, ENOSPC) is detected, warned about once, and
 * disables caching for the rest of the run instead of silently
 * dropping rows.
 *
 * Cells that exhaust their retries (RunOptions::maxRetries) are stored
 * as tombstone rows ("<key>\t!failed attempts=N"); figure tables
 * render them as "-" and drivers report them via exitCode().
 */
class ResultStore
{
  public:
    /** Opens (and loads) the cache file next to the working dir. */
    explicit ResultStore(const std::string &path = "parrot_bench_cache.txt");

    /** Compacts the cache file (atomic rewrite in canonical order)
     * when this run added or discarded anything. */
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Fetch or compute one result. */
    sim::SimResult get(const std::string &model,
                       const workload::SuiteEntry &entry);

    /**
     * Fetch or compute the full suite for one model. Uncached entries
     * run concurrently on the runner's worker pool and are journaled
     * as they complete; results (and the compacted cache file) are
     * identical to serial runs.
     */
    std::vector<sim::SimResult> getSuite(
        const std::string &model,
        const std::vector<workload::SuiteEntry> &suite);

    /** The calibrated Pmax (cached like any other result). */
    double pmax();

    /** True when any memoized cell (loaded or just computed) is a
     * tombstone — some figure cells render as "-". */
    bool hadFailures() const;

    /**
     * What a figure driver's main() should return: 0 when every cell
     * is healthy, 3 when any cell is a tombstone (distinct from the
     * CLI-error exit 2 and the cosim-mismatch exit 1), so CI can tell
     * "figures degraded" from "binary crashed".
     */
    int exitCode() const;

  private:
    std::string keyOf(const std::string &model, const std::string &app,
                      std::uint64_t insts) const;
    void load();
    void append(const std::string &key, const sim::SimResult &r);
    /** Warn once and stop persisting for the rest of the run. */
    void disableCache(const std::string &reason);
    /** Atomic canonical rewrite of the whole memo. */
    void compact();

    std::string path;
    bool enabled = true;
    std::size_t discardedLines = 0; //!< malformed lines seen by load()
    std::size_t appendedRows = 0;   //!< journal rows this run
    std::mutex appendMutex;         //!< workers append concurrently
    atomic_file::AppendJournal journal;
    std::map<std::string, sim::SimResult> memo;
    sim::SuiteRunner runner;
    bool pmaxReady = false;
    double pmaxValue = 0.0;
};

/** Metric extractor. */
using Metric = std::function<double(const sim::SimResult &)>;

/**
 * Print a paper-style figure: one row per variant model, columns = the
 * five benchmark groups + All (+ optionally the killer apps), each cell
 * the geomean ratio of `metric` between the variant and its baseline.
 *
 * @param title figure caption.
 * @param rows (variant model, baseline model) pairs.
 * @param store result provider.
 * @param suite applications.
 * @param metric the measured quantity.
 * @param as_percent_delta print (ratio-1) as a signed percentage.
 * @param with_killers add flash/wupwise/perlbench columns.
 */
void printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    ResultStore &store, const std::vector<workload::SuiteEntry> &suite,
    const Metric &metric, bool as_percent_delta, bool with_killers);

/**
 * Print an absolute per-group figure: one row per model, cells are
 * geomeans of `metric`.
 */
void printAbsoluteFigure(const std::string &title,
                         const std::vector<std::string> &models,
                         ResultStore &store,
                         const std::vector<workload::SuiteEntry> &suite,
                         const Metric &metric, int precision);

} // namespace parrot::bench

#endif // PARROT_BENCH_COMMON_BENCH_UTIL_HH
