/**
 * @file
 * Shared infrastructure for the figure-reproduction benches.
 *
 * Every bench binary needs the same expensive grid of
 * (model x application) simulations; the result cache
 * (sim::ResultStore) memoizes finished SimResults in a plain-text
 * cache file in the working directory so the first bench pays and the
 * rest reuse. The file is self-describing: a version header lists the
 * exact ordered field keys (from sim::resultFields()) and every record
 * is key=value pairs, so any change to the SimResult schema
 * invalidates the cache wholesale and it silently regenerates. Delete
 * the file (or set PARROT_BENCH_NO_CACHE=1) to force fresh runs. The
 * instruction budget can be overridden with PARROT_BENCH_INSTS.
 *
 * Uncached simulations dispatch onto the suite runner's worker pool;
 * the job count comes from --jobs / PARROT_JOBS (default
 * hardware_concurrency) and never changes the results — see
 * sim::SuiteRunner. For multi-process sharded campaigns over the same
 * cache file, see tools/parrot_campaign (sim::runCampaign).
 */

#ifndef PARROT_BENCH_COMMON_BENCH_UTIL_HH
#define PARROT_BENCH_COMMON_BENCH_UTIL_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "workload/apps.hh"

namespace parrot::bench
{

/** Instruction budget for bench runs (PARROT_BENCH_INSTS override). */
std::uint64_t benchInstBudget();

/** Worker-pool size for bench runs (PARROT_JOBS override; 0 = auto). */
unsigned benchJobs();

/**
 * The RunOptions every bench driver uses: the bench instruction budget
 * and job count plus the resilience knobs from the environment
 * (PARROT_DEADLINE_MS, PARROT_RETRIES, PARROT_RETRY_BACKOFF_MS).
 */
sim::RunOptions benchRunOptions();

/**
 * Parse the common bench flags every driver accepts and publish them
 * to the environment the helpers above read:
 *   --jobs N         worker threads (PARROT_JOBS)
 *   --insts N        instruction budget (PARROT_BENCH_INSTS)
 *   --no-cache       ignore/skip the result cache (PARROT_BENCH_NO_CACHE)
 *   --deadline-ms N  per-cell wall-clock watchdog (PARROT_DEADLINE_MS)
 *   --retries N      attempts for a failed cell before it becomes a
 *                    tombstone (PARROT_RETRIES)
 * Unknown flags are fatal. Call first thing in main().
 */
void parseBenchArgs(int argc, char **argv);

/**
 * The bench-flavoured result store: sim::ResultStore pointed at the
 * conventional cache file in the working directory and configured from
 * the bench environment (see benchRunOptions()). All durability,
 * concurrency and exit-code semantics live in the base class.
 */
class ResultStore : public sim::ResultStore
{
  public:
    explicit ResultStore(
        const std::string &path = "parrot_bench_cache.txt")
        : sim::ResultStore(path, benchRunOptions())
    {}
};

/** Metric extractor. */
using Metric = std::function<double(const sim::SimResult &)>;

/**
 * Print a paper-style figure: one row per variant model, columns = the
 * five benchmark groups + All (+ optionally the killer apps), each cell
 * the geomean ratio of `metric` between the variant and its baseline.
 *
 * @param title figure caption.
 * @param rows (variant model, baseline model) pairs.
 * @param store result provider.
 * @param suite applications.
 * @param metric the measured quantity.
 * @param as_percent_delta print (ratio-1) as a signed percentage.
 * @param with_killers add flash/wupwise/perlbench columns.
 */
void printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    sim::ResultStore &store,
    const std::vector<workload::SuiteEntry> &suite, const Metric &metric,
    bool as_percent_delta, bool with_killers);

/**
 * Print an absolute per-group figure: one row per model, cells are
 * geomeans of `metric`.
 */
void printAbsoluteFigure(const std::string &title,
                         const std::vector<std::string> &models,
                         sim::ResultStore &store,
                         const std::vector<workload::SuiteEntry> &suite,
                         const Metric &metric, int precision);

} // namespace parrot::bench

#endif // PARROT_BENCH_COMMON_BENCH_UTIL_HH
