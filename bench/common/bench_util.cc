#include "bench_util.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/fault.hh"
#include "common/logging.hh"
#include "sim/result.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace parrot::bench
{

using sim::SimResult;

std::uint64_t
benchInstBudget()
{
    if (const char *env = std::getenv("PARROT_BENCH_INSTS"))
        return cli::parseU64("PARROT_BENCH_INSTS", env);
    return 600000;
}

unsigned
benchJobs()
{
    return sim::resolveJobs(0);
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--jobs")) {
            // Validate eagerly so a typo fails at the command line,
            // not deep inside the first helper reading the env var.
            unsigned jobs =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_JOBS", std::to_string(jobs).c_str(), 1);
        } else if (!std::strcmp(arg, "--insts")) {
            std::uint64_t insts =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_BENCH_INSTS",
                   std::to_string(insts).c_str(), 1);
        } else if (!std::strcmp(arg, "--no-cache")) {
            setenv("PARROT_BENCH_NO_CACHE", "1", 1);
        } else if (!std::strcmp(arg, "--deadline-ms")) {
            std::uint64_t ms =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_DEADLINE_MS",
                   std::to_string(ms).c_str(), 1);
        } else if (!std::strcmp(arg, "--retries")) {
            unsigned retries =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_RETRIES",
                   std::to_string(retries).c_str(), 1);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --jobs N, "
                         "--insts N, --no-cache, --deadline-ms N, "
                         "--retries N)\n",
                         arg);
            std::exit(2);
        }
    }
}

namespace
{

/**
 * The cache-file header: format version plus the full ordered field
 * list. Loading compares it verbatim, so renaming, reordering, adding
 * or removing any SimResult field makes every old cache stale at once
 * — there is deliberately no migration path for mixed-format files.
 */
std::string
cacheHeader()
{
    std::string h = "# parrot-bench-cache v2";
    for (const auto &f : sim::resultFields()) {
        h += ' ';
        h += f.key;
    }
    return h;
}

/** Serialize a SimResult as self-describing key=value pairs. */
std::string
serialize(const SimResult &r)
{
    std::ostringstream out;
    out.precision(17); // round-trips doubles exactly
    bool first = true;
    for (const auto &f : sim::resultFields()) {
        if (!first)
            out << ' ';
        first = false;
        out << f.key << '=' << f.get(r);
    }
    return out.str();
}

bool
deserialize(const std::string &line, SimResult &r)
{
    std::istringstream in(line);
    std::string token;
    std::size_t seen = 0;
    while (in >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            return false;
        const sim::ResultField *f =
            sim::findResultField(token.substr(0, eq));
        if (!f)
            return false;
        const std::string text = token.substr(eq + 1);
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            return false;
        f->set(r, v);
        ++seen;
    }
    // The header pins the field set, but a line can still be cut short
    // by a killed run; demand every field rather than half a result.
    return seen == sim::resultFields().size();
}

} // namespace

namespace
{

sim::RunOptions
benchRunOptions()
{
    sim::RunOptions opts;
    opts.instBudget = benchInstBudget();
    opts.jobs = benchJobs();
    if (const char *env = std::getenv("PARROT_DEADLINE_MS"))
        opts.deadlineMs = cli::parseU64("PARROT_DEADLINE_MS", env);
    if (const char *env = std::getenv("PARROT_RETRIES"))
        opts.maxRetries = cli::parseU32("PARROT_RETRIES", env);
    if (const char *env = std::getenv("PARROT_RETRY_BACKOFF_MS"))
        opts.retryBackoffMs =
            cli::parseU64("PARROT_RETRY_BACKOFF_MS", env);
    return opts;
}

/** Tombstone cache-row payload (the part after the key's tab). */
constexpr const char *kTombstoneTag = "!failed";

/** One cache line for `key`: a normal self-describing record, or the
 * tombstone form for cells that exhausted their retries. */
std::string
serializeLine(const std::string &key, const SimResult &r)
{
    if (r.tombstone) {
        return key + '\t' + kTombstoneTag + " attempts=" +
               std::to_string(r.attempts);
    }
    return key + '\t' + serialize(r);
}

/** Parse a tombstone payload; false when `text` is not one. */
bool
deserializeTombstone(const std::string &text, SimResult &r)
{
    std::istringstream in(text);
    std::string tag;
    if (!(in >> tag) || tag != kTombstoneTag)
        return false;
    r.tombstone = true;
    std::string token;
    while (in >> token) {
        if (token.rfind("attempts=", 0) == 0)
            r.attempts = static_cast<unsigned>(
                std::strtoul(token.c_str() + 9, nullptr, 10));
    }
    return true;
}

} // namespace

ResultStore::ResultStore(const std::string &cache_path)
    : path(cache_path), runner(benchRunOptions())
{
    if (std::getenv("PARROT_BENCH_NO_CACHE"))
        enabled = false;
    if (enabled)
        load();
}

ResultStore::~ResultStore()
{
    // Close before compacting: compact() renames a fresh file over
    // `path`, and an open O_APPEND fd would keep writing to the
    // orphaned inode.
    journal.close();
    // Only rewrite when this run actually changed something; read-only
    // figure reruns must leave the committed cache bytes untouched.
    if (enabled && (appendedRows > 0 || discardedLines > 0))
        compact();
}

std::string
ResultStore::keyOf(const std::string &model, const std::string &app,
                   std::uint64_t insts) const
{
    return model + "/" + app + "/" + std::to_string(insts);
}

void
ResultStore::load()
{
    std::ifstream in(path);
    if (!in)
        return;
    std::string line;
    if (!std::getline(in, line))
        return; // empty file: append() will write the header
    if (line != cacheHeader()) {
        // Stale version or foreign field set. Discard the whole file
        // and let the benches regenerate; salvaging lines from a
        // mixed-format cache risks figures built from stale metrics.
        in.close();
        std::fprintf(stderr,
                     "[bench cache] %s: format/version mismatch, "
                     "discarding and regenerating\n",
                     path.c_str());
        std::remove(path.c_str());
        return;
    }
    while (std::getline(in, line)) {
        auto tab = line.find('\t');
        if (tab == std::string::npos) {
            ++discardedLines;
            continue;
        }
        std::string key = line.substr(0, tab);
        const std::string payload = line.substr(tab + 1);
        SimResult r;
        if (!deserializeTombstone(payload, r) &&
            !deserialize(payload, r)) {
            // A line cut short by a killed run, or hand-edited junk:
            // drop it and let the cell re-run.
            ++discardedLines;
            continue;
        }
        // model and app are recoverable from the key.
        auto slash1 = key.find('/');
        auto slash2 = key.rfind('/');
        if (slash1 == std::string::npos || slash2 <= slash1) {
            ++discardedLines;
            continue;
        }
        r.model = key.substr(0, slash1);
        r.app = key.substr(slash1 + 1, slash2 - slash1 - 1);
        memo.emplace(std::move(key), std::move(r));
    }
    if (discardedLines > 0) {
        std::fprintf(stderr,
                     "[bench cache] %s: discarded %zu malformed "
                     "line(s); affected cells will re-run\n",
                     path.c_str(), discardedLines);
    }
}

void
ResultStore::append(const std::string &key, const SimResult &r)
{
    // Workers append from the suite runner's pool the moment each cell
    // completes; the journal write (open/size/appendLine) must be one
    // critical section so lines never interleave.
    std::lock_guard<std::mutex> lock(appendMutex);
    if (!enabled)
        return;
    if (!journal.isOpen() && !journal.open(path)) {
        disableCache(journal.error());
        return;
    }
    if (journal.size() == 0 && !journal.appendLine(cacheHeader())) {
        disableCache(journal.error());
        return;
    }
    if (!journal.appendLine(serializeLine(key, r))) {
        disableCache(journal.error());
        return;
    }
    ++appendedRows;
    fault::rowPersisted();
}

void
ResultStore::disableCache(const std::string &reason)
{
    enabled = false;
    journal.close();
    std::fprintf(stderr,
                 "[bench cache] %s: %s; caching disabled for this "
                 "run\n",
                 path.c_str(), reason.c_str());
}

void
ResultStore::compact()
{
    // The memo is a std::map, so iteration is already in canonical
    // (sorted-key) order: every clean shutdown converges to the same
    // bytes regardless of the order cells were journaled in.
    std::string content = cacheHeader();
    content += '\n';
    for (const auto &[key, r] : memo) {
        content += serializeLine(key, r);
        content += '\n';
    }
    std::string err;
    if (!atomic_file::writeFileAtomic(path, content, &err)) {
        std::fprintf(stderr,
                     "[bench cache] %s: compaction failed (%s); "
                     "journaled rows are still on disk\n",
                     path.c_str(), err.c_str());
    }
}

bool
ResultStore::hadFailures() const
{
    for (const auto &[key, r] : memo) {
        if (r.tombstone)
            return true;
    }
    return false;
}

int
ResultStore::exitCode() const
{
    return hadFailures() ? 3 : 0;
}

double
ResultStore::pmax()
{
    if (pmaxReady)
        return pmaxValue;
    // Memoize Pmax as a pseudo-result under a reserved key.
    std::string key = keyOf("_pmax", "swim", runner.options().instBudget);
    auto it = memo.find(key);
    if (it != memo.end() && it->second.energyPerCycle > 0.0 &&
        std::isfinite(it->second.energyPerCycle)) {
        pmaxValue = it->second.energyPerCycle;
        // Skip the runner's own calibration run.
        runner.setPmax(pmaxValue);
    } else {
        if (it != memo.end()) {
            // A stale or corrupt marker (zero, NaN, negative — e.g. a
            // cache written by a crashed calibration) must not silently
            // zero every leakage figure: recalibrate and overwrite it.
            PARROT_WARN("ignoring stale pmax marker %f in result "
                        "cache; recalibrating",
                        it->second.energyPerCycle);
        }
        pmaxValue = runner.pmax();
        SimResult marker;
        marker.energyPerCycle = pmaxValue;
        memo[key] = marker;
        append(key, marker);
    }
    pmaxReady = true;
    return pmaxValue;
}

SimResult
ResultStore::get(const std::string &model,
                 const workload::SuiteEntry &entry)
{
    std::string key =
        keyOf(model, entry.profile.name, runner.options().instBudget);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    // Ensure the leakage calibration happened (and is cached) first.
    pmax();
    SimResult r = runner.runOne(model, entry);
    memo.emplace(key, r);
    append(key, r);
    std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                 entry.profile.name.c_str());
    return r;
}

std::vector<SimResult>
ResultStore::getSuite(const std::string &model,
                      const std::vector<workload::SuiteEntry> &suite)
{
    // Dispatch only the entries the memo doesn't cover onto the
    // runner's worker pool, then fold them back (and into the cache
    // file) in suite order so output stays deterministic.
    std::vector<workload::SuiteEntry> missing;
    for (const auto &entry : suite) {
        if (!memo.count(keyOf(model, entry.profile.name,
                              runner.options().instBudget)))
            missing.push_back(entry);
    }
    if (!missing.empty()) {
        pmax();
        // Journal each cell the moment its worker finishes — a killed
        // run keeps everything but the in-flight cells. The journal
        // order is nondeterministic under jobs>1; compaction at
        // destruction restores the canonical order.
        auto fresh = runner.runSuite(
            model, missing,
            [&](std::size_t i, const SimResult &r) {
                append(keyOf(model, missing[i].profile.name,
                             runner.options().instBudget),
                       r);
            });
        for (std::size_t i = 0; i < missing.size(); ++i) {
            std::string key = keyOf(model, missing[i].profile.name,
                                    runner.options().instBudget);
            memo.emplace(key, fresh[i]);
            std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                         missing[i].profile.name.c_str());
        }
    }

    std::vector<SimResult> out;
    out.reserve(suite.size());
    for (const auto &entry : suite)
        out.push_back(memo.at(keyOf(model, entry.profile.name,
                                    runner.options().instBudget)));
    return out;
}

namespace
{

/**
 * Fixed figure column order. summarizeByGroup skips groups with no
 * results, so the printers look cells up by label instead of zipping
 * against this list; a group emptied by tombstones renders "-".
 */
const std::vector<std::string> kGroupColumns = {
    "SpecInt", "SpecFP", "Office", "Multimedia", "DotNet", "All"};

using CellFormat = std::function<std::string(double)>;

/**
 * The six group cells for `results` (which must already have
 * tombstones filtered out — geomean rejects their zero metrics),
 * "-" for any group left without a healthy result.
 */
std::vector<std::string>
summaryCells(const std::vector<SimResult> &results, const Metric &metric,
             const CellFormat &fmt)
{
    std::vector<std::string> cells;
    if (results.empty())
        return std::vector<std::string>(kGroupColumns.size(), "-");
    auto summary = sim::summarizeByGroup(results, metric);
    for (const auto &col : kGroupColumns) {
        std::string cell = "-";
        for (std::size_t i = 0; i < summary.labels.size(); ++i) {
            if (summary.labels[i] == col) {
                cell = fmt(summary.values[i]);
                break;
            }
        }
        cells.push_back(std::move(cell));
    }
    return cells;
}

} // namespace

void
printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    ResultStore &store, const std::vector<workload::SuiteEntry> &suite,
    const Metric &metric, bool as_percent_delta, bool with_killers)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    std::vector<std::string> header{"model(vs)"};
    header.insert(header.end(), kGroupColumns.begin(),
                  kGroupColumns.end());
    static const char *const killers[] = {"flash", "wupwise",
                                          "perlbench"};
    if (with_killers)
        for (const char *k : killers)
            header.push_back(k);
    table.addRow(header);

    const CellFormat fmt = [as_percent_delta](double v) {
        return as_percent_delta ? stats::TextTable::pct(v - 1.0)
                                : stats::TextTable::num(v, 3);
    };

    for (const auto &[variant, baseline] : rows) {
        auto var_results = store.getSuite(variant, suite);
        auto base_results = store.getSuite(baseline, suite);

        // Per-app ratios feed the per-group geomeans; a pair with a
        // tombstone on either side drops out here.
        std::vector<sim::SimResult> ratio_results;
        ratio_results.reserve(var_results.size());
        for (std::size_t i = 0; i < var_results.size(); ++i) {
            if (var_results[i].tombstone || base_results[i].tombstone)
                continue;
            double b = metric(base_results[i]);
            double v = metric(var_results[i]);
            PARROT_ASSERT(b > 0 && v > 0, "non-positive metric");
            sim::SimResult r = var_results[i];
            r.ipc = v / b; // reuse ipc as scratch ratio
            ratio_results.push_back(std::move(r));
        }

        std::vector<std::string> row{variant + " vs " + baseline};
        auto cells = summaryCells(
            ratio_results,
            [](const sim::SimResult &r) { return r.ipc; }, fmt);
        row.insert(row.end(), cells.begin(), cells.end());
        if (with_killers) {
            for (const char *k : killers) {
                // getSuite keeps suite order, so variant and baseline
                // results line up index-for-index.
                const sim::SimResult *vr = nullptr;
                const sim::SimResult *br = nullptr;
                for (std::size_t i = 0; i < var_results.size(); ++i) {
                    if (var_results[i].app == k) {
                        vr = &var_results[i];
                        br = &base_results[i];
                        break;
                    }
                }
                if (!vr || vr->tombstone || br->tombstone) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(metric(*vr) / metric(*br)));
            }
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    // Per-application bars (the paper's chart granularity), on demand.
    if (std::getenv("PARROT_BENCH_DETAIL")) {
        stats::TextTable detail;
        std::vector<std::string> header{"app"};
        for (const auto &[variant, baseline] : rows)
            header.push_back(variant + "/" + baseline);
        detail.addRow(header);
        for (const auto &entry : suite) {
            std::vector<std::string> row{entry.profile.name};
            for (const auto &[variant, baseline] : rows) {
                sim::SimResult v = store.get(variant, entry);
                sim::SimResult b = store.get(baseline, entry);
                if (v.tombstone || b.tombstone) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(metric(v) / metric(b)));
            }
            detail.addRow(row);
        }
        std::printf("%s\n", detail.render().c_str());
    }
}

void
printAbsoluteFigure(const std::string &title,
                    const std::vector<std::string> &models,
                    ResultStore &store,
                    const std::vector<workload::SuiteEntry> &suite,
                    const Metric &metric, int precision)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    std::vector<std::string> header{"model"};
    header.insert(header.end(), kGroupColumns.begin(),
                  kGroupColumns.end());
    table.addRow(header);
    const CellFormat fmt = [precision](double v) {
        return stats::TextTable::num(v, precision);
    };
    for (const auto &model : models) {
        auto results = store.getSuite(model, suite);
        std::vector<sim::SimResult> healthy;
        healthy.reserve(results.size());
        for (const auto &r : results) {
            if (!r.tombstone)
                healthy.push_back(r);
        }
        std::vector<std::string> row{model};
        auto cells = summaryCells(healthy, metric, fmt);
        row.insert(row.end(), cells.begin(), cells.end());
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace parrot::bench
