#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/cli.hh"
#include "common/logging.hh"
#include "sim/result.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace parrot::bench
{

using sim::SimResult;

std::uint64_t
benchInstBudget()
{
    if (const char *env = std::getenv("PARROT_BENCH_INSTS"))
        return cli::parseU64("PARROT_BENCH_INSTS", env);
    return 600000;
}

unsigned
benchJobs()
{
    return sim::resolveJobs(0);
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--jobs")) {
            // Validate eagerly so a typo fails at the command line,
            // not deep inside the first helper reading the env var.
            unsigned jobs =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_JOBS", std::to_string(jobs).c_str(), 1);
        } else if (!std::strcmp(arg, "--insts")) {
            std::uint64_t insts =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_BENCH_INSTS",
                   std::to_string(insts).c_str(), 1);
        } else if (!std::strcmp(arg, "--no-cache")) {
            setenv("PARROT_BENCH_NO_CACHE", "1", 1);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --jobs N, "
                         "--insts N, --no-cache)\n",
                         arg);
            std::exit(2);
        }
    }
}

namespace
{

/**
 * The cache-file header: format version plus the full ordered field
 * list. Loading compares it verbatim, so renaming, reordering, adding
 * or removing any SimResult field makes every old cache stale at once
 * — there is deliberately no migration path for mixed-format files.
 */
std::string
cacheHeader()
{
    std::string h = "# parrot-bench-cache v2";
    for (const auto &f : sim::resultFields()) {
        h += ' ';
        h += f.key;
    }
    return h;
}

/** Serialize a SimResult as self-describing key=value pairs. */
std::string
serialize(const SimResult &r)
{
    std::ostringstream out;
    out.precision(17); // round-trips doubles exactly
    bool first = true;
    for (const auto &f : sim::resultFields()) {
        if (!first)
            out << ' ';
        first = false;
        out << f.key << '=' << f.get(r);
    }
    return out.str();
}

bool
deserialize(const std::string &line, SimResult &r)
{
    std::istringstream in(line);
    std::string token;
    std::size_t seen = 0;
    while (in >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            return false;
        const sim::ResultField *f =
            sim::findResultField(token.substr(0, eq));
        if (!f)
            return false;
        const std::string text = token.substr(eq + 1);
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            return false;
        f->set(r, v);
        ++seen;
    }
    // The header pins the field set, but a line can still be cut short
    // by a killed run; demand every field rather than half a result.
    return seen == sim::resultFields().size();
}

} // namespace

namespace
{

sim::RunOptions
benchRunOptions()
{
    sim::RunOptions opts;
    opts.instBudget = benchInstBudget();
    opts.jobs = benchJobs();
    return opts;
}

} // namespace

ResultStore::ResultStore(const std::string &cache_path)
    : path(cache_path), runner(benchRunOptions())
{
    if (std::getenv("PARROT_BENCH_NO_CACHE"))
        enabled = false;
    if (enabled)
        load();
}

std::string
ResultStore::keyOf(const std::string &model, const std::string &app,
                   std::uint64_t insts) const
{
    return model + "/" + app + "/" + std::to_string(insts);
}

void
ResultStore::load()
{
    std::ifstream in(path);
    if (!in)
        return;
    std::string line;
    if (!std::getline(in, line))
        return; // empty file: append() will write the header
    if (line != cacheHeader()) {
        // Stale version or foreign field set. Discard the whole file
        // and let the benches regenerate; salvaging lines from a
        // mixed-format cache risks figures built from stale metrics.
        in.close();
        std::fprintf(stderr,
                     "[bench cache] %s: format/version mismatch, "
                     "discarding and regenerating\n",
                     path.c_str());
        std::remove(path.c_str());
        return;
    }
    while (std::getline(in, line)) {
        auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        std::string key = line.substr(0, tab);
        SimResult r;
        if (!deserialize(line.substr(tab + 1), r))
            continue;
        // model and app are recoverable from the key.
        auto slash1 = key.find('/');
        auto slash2 = key.rfind('/');
        if (slash1 == std::string::npos || slash2 <= slash1)
            continue;
        r.model = key.substr(0, slash1);
        r.app = key.substr(slash1 + 1, slash2 - slash1 - 1);
        memo.emplace(std::move(key), std::move(r));
    }
}

void
ResultStore::append(const std::string &key, const SimResult &r)
{
    if (!enabled)
        return;
    std::ofstream out(path, std::ios::app);
    if (out.tellp() == 0)
        out << cacheHeader() << '\n';
    out << key << '\t' << serialize(r) << '\n';
}

double
ResultStore::pmax()
{
    if (pmaxReady)
        return pmaxValue;
    // Memoize Pmax as a pseudo-result under a reserved key.
    std::string key = keyOf("_pmax", "swim", runner.options().instBudget);
    auto it = memo.find(key);
    if (it != memo.end()) {
        pmaxValue = it->second.energyPerCycle;
        // Skip the runner's own calibration run.
        runner.setPmax(pmaxValue);
    } else {
        pmaxValue = runner.pmax();
        SimResult marker;
        marker.energyPerCycle = pmaxValue;
        memo.emplace(key, marker);
        append(key, marker);
    }
    pmaxReady = true;
    return pmaxValue;
}

SimResult
ResultStore::get(const std::string &model,
                 const workload::SuiteEntry &entry)
{
    std::string key =
        keyOf(model, entry.profile.name, runner.options().instBudget);
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    // Ensure the leakage calibration happened (and is cached) first.
    pmax();
    SimResult r = runner.runOne(model, entry);
    memo.emplace(key, r);
    append(key, r);
    std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                 entry.profile.name.c_str());
    return r;
}

std::vector<SimResult>
ResultStore::getSuite(const std::string &model,
                      const std::vector<workload::SuiteEntry> &suite)
{
    // Dispatch only the entries the memo doesn't cover onto the
    // runner's worker pool, then fold them back (and into the cache
    // file) in suite order so output stays deterministic.
    std::vector<workload::SuiteEntry> missing;
    for (const auto &entry : suite) {
        if (!memo.count(keyOf(model, entry.profile.name,
                              runner.options().instBudget)))
            missing.push_back(entry);
    }
    if (!missing.empty()) {
        pmax();
        auto fresh = runner.runSuite(model, missing);
        for (std::size_t i = 0; i < missing.size(); ++i) {
            std::string key = keyOf(model, missing[i].profile.name,
                                    runner.options().instBudget);
            memo.emplace(key, fresh[i]);
            append(key, fresh[i]);
            std::fprintf(stderr, "  [ran %s/%s]\n", model.c_str(),
                         missing[i].profile.name.c_str());
        }
    }

    std::vector<SimResult> out;
    out.reserve(suite.size());
    for (const auto &entry : suite)
        out.push_back(memo.at(keyOf(model, entry.profile.name,
                                    runner.options().instBudget)));
    return out;
}

void
printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    ResultStore &store, const std::vector<workload::SuiteEntry> &suite,
    const Metric &metric, bool as_percent_delta, bool with_killers)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    std::vector<std::string> header{"model(vs)", "SpecInt", "SpecFP",
                                    "Office", "Multimedia", "DotNet",
                                    "All"};
    static const char *const killers[] = {"flash", "wupwise",
                                          "perlbench"};
    if (with_killers)
        for (const char *k : killers)
            header.push_back(k);
    table.addRow(header);

    for (const auto &[variant, baseline] : rows) {
        auto var_results = store.getSuite(variant, suite);
        auto base_results = store.getSuite(baseline, suite);

        // Per-app ratios feed the per-group geomeans.
        std::vector<sim::SimResult> ratio_results = var_results;
        for (std::size_t i = 0; i < ratio_results.size(); ++i) {
            double b = metric(base_results[i]);
            double v = metric(var_results[i]);
            PARROT_ASSERT(b > 0 && v > 0, "non-positive metric");
            ratio_results[i].ipc = v / b; // reuse ipc as scratch ratio
        }
        auto summary = sim::summarizeByGroup(
            ratio_results,
            [](const sim::SimResult &r) { return r.ipc; });

        std::vector<std::string> row{variant + " vs " + baseline};
        for (double v : summary.values) {
            row.push_back(as_percent_delta
                              ? stats::TextTable::pct(v - 1.0)
                              : stats::TextTable::num(v, 3));
        }
        if (with_killers) {
            for (const char *k : killers) {
                bool in_suite = false;
                for (const auto &entry : suite)
                    in_suite |= (entry.profile.name == k);
                if (!in_suite) {
                    row.push_back("-");
                    continue;
                }
                double v = metric(sim::findResult(var_results, k)) /
                           metric(sim::findResult(base_results, k));
                row.push_back(as_percent_delta
                                  ? stats::TextTable::pct(v - 1.0)
                                  : stats::TextTable::num(v, 3));
            }
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    // Per-application bars (the paper's chart granularity), on demand.
    if (std::getenv("PARROT_BENCH_DETAIL")) {
        stats::TextTable detail;
        std::vector<std::string> header{"app"};
        for (const auto &[variant, baseline] : rows)
            header.push_back(variant + "/" + baseline);
        detail.addRow(header);
        for (const auto &entry : suite) {
            std::vector<std::string> row{entry.profile.name};
            for (const auto &[variant, baseline] : rows) {
                double v = metric(store.get(variant, entry)) /
                           metric(store.get(baseline, entry));
                row.push_back(as_percent_delta
                                  ? stats::TextTable::pct(v - 1.0)
                                  : stats::TextTable::num(v, 3));
            }
            detail.addRow(row);
        }
        std::printf("%s\n", detail.render().c_str());
    }
}

void
printAbsoluteFigure(const std::string &title,
                    const std::vector<std::string> &models,
                    ResultStore &store,
                    const std::vector<workload::SuiteEntry> &suite,
                    const Metric &metric, int precision)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    table.addRow({"model", "SpecInt", "SpecFP", "Office", "Multimedia",
                  "DotNet", "All"});
    for (const auto &model : models) {
        auto results = store.getSuite(model, suite);
        auto summary = sim::summarizeByGroup(results, metric);
        std::vector<std::string> row{model};
        for (double v : summary.values)
            row.push_back(stats::TextTable::num(v, precision));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace parrot::bench
