#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/cli.hh"
#include "common/logging.hh"
#include "stats/stats.hh"
#include "stats/table.hh"

namespace parrot::bench
{

using sim::SimResult;

std::uint64_t
benchInstBudget()
{
    if (const char *env = std::getenv("PARROT_BENCH_INSTS"))
        return cli::parseU64("PARROT_BENCH_INSTS", env);
    return 600000;
}

unsigned
benchJobs()
{
    return sim::resolveJobs(0);
}

sim::RunOptions
benchRunOptions()
{
    sim::RunOptions opts;
    opts.instBudget = benchInstBudget();
    opts.jobs = benchJobs();
    sim::applyRunOptionsEnv(opts);
    return opts;
}

void
parseBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--jobs")) {
            // Validate eagerly so a typo fails at the command line,
            // not deep inside the first helper reading the env var.
            unsigned jobs =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_JOBS", std::to_string(jobs).c_str(), 1);
        } else if (!std::strcmp(arg, "--insts")) {
            std::uint64_t insts =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_BENCH_INSTS",
                   std::to_string(insts).c_str(), 1);
        } else if (!std::strcmp(arg, "--no-cache")) {
            setenv("PARROT_BENCH_NO_CACHE", "1", 1);
        } else if (!std::strcmp(arg, "--deadline-ms")) {
            std::uint64_t ms =
                cli::parseU64(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_DEADLINE_MS",
                   std::to_string(ms).c_str(), 1);
        } else if (!std::strcmp(arg, "--retries")) {
            unsigned retries =
                cli::parseU32(arg, cli::needValue(argc, argv, i));
            setenv("PARROT_RETRIES",
                   std::to_string(retries).c_str(), 1);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --jobs N, "
                         "--insts N, --no-cache, --deadline-ms N, "
                         "--retries N)\n",
                         arg);
            std::exit(2);
        }
    }
}

namespace
{

/**
 * Fixed figure column order. summarizeByGroup skips groups with no
 * results, so the printers look cells up by label instead of zipping
 * against this list; a group emptied by tombstones renders "-".
 */
const std::vector<std::string> kGroupColumns = {
    "SpecInt", "SpecFP", "Office", "Multimedia", "DotNet", "All"};

using CellFormat = std::function<std::string(double)>;

/**
 * The six group cells for `results` (which must already have
 * tombstones filtered out — geomean rejects their zero metrics),
 * "-" for any group left without a healthy result.
 */
std::vector<std::string>
summaryCells(const std::vector<SimResult> &results, const Metric &metric,
             const CellFormat &fmt)
{
    std::vector<std::string> cells;
    if (results.empty())
        return std::vector<std::string>(kGroupColumns.size(), "-");
    auto summary = sim::summarizeByGroup(results, metric);
    for (const auto &col : kGroupColumns) {
        std::string cell = "-";
        for (std::size_t i = 0; i < summary.labels.size(); ++i) {
            if (summary.labels[i] == col) {
                cell = fmt(summary.values[i]);
                break;
            }
        }
        cells.push_back(std::move(cell));
    }
    return cells;
}

} // namespace

void
printRelativeFigure(
    const std::string &title,
    const std::vector<std::pair<std::string, std::string>> &rows,
    sim::ResultStore &store,
    const std::vector<workload::SuiteEntry> &suite, const Metric &metric,
    bool as_percent_delta, bool with_killers)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    std::vector<std::string> header{"model(vs)"};
    header.insert(header.end(), kGroupColumns.begin(),
                  kGroupColumns.end());
    static const char *const killers[] = {"flash", "wupwise",
                                          "perlbench"};
    if (with_killers)
        for (const char *k : killers)
            header.push_back(k);
    table.addRow(header);

    const CellFormat fmt = [as_percent_delta](double v) {
        return as_percent_delta ? stats::TextTable::pct(v - 1.0)
                                : stats::TextTable::num(v, 3);
    };

    for (const auto &[variant, baseline] : rows) {
        auto var_results = store.getSuite(variant, suite);
        auto base_results = store.getSuite(baseline, suite);

        // Per-app ratios feed the per-group geomeans; a pair with a
        // tombstone on either side drops out here.
        std::vector<sim::SimResult> ratio_results;
        ratio_results.reserve(var_results.size());
        for (std::size_t i = 0; i < var_results.size(); ++i) {
            if (var_results[i].tombstone || base_results[i].tombstone)
                continue;
            double b = metric(base_results[i]);
            double v = metric(var_results[i]);
            PARROT_ASSERT(b > 0 && v > 0, "non-positive metric");
            sim::SimResult r = var_results[i];
            r.ipc = v / b; // reuse ipc as scratch ratio
            ratio_results.push_back(std::move(r));
        }

        std::vector<std::string> row{variant + " vs " + baseline};
        auto cells = summaryCells(
            ratio_results,
            [](const sim::SimResult &r) { return r.ipc; }, fmt);
        row.insert(row.end(), cells.begin(), cells.end());
        if (with_killers) {
            for (const char *k : killers) {
                // getSuite keeps suite order, so variant and baseline
                // results line up index-for-index.
                const sim::SimResult *vr = nullptr;
                const sim::SimResult *br = nullptr;
                for (std::size_t i = 0; i < var_results.size(); ++i) {
                    if (var_results[i].app == k) {
                        vr = &var_results[i];
                        br = &base_results[i];
                        break;
                    }
                }
                if (!vr || vr->tombstone || br->tombstone) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(metric(*vr) / metric(*br)));
            }
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    // Per-application bars (the paper's chart granularity), on demand.
    if (std::getenv("PARROT_BENCH_DETAIL")) {
        stats::TextTable detail;
        std::vector<std::string> header{"app"};
        for (const auto &[variant, baseline] : rows)
            header.push_back(variant + "/" + baseline);
        detail.addRow(header);
        for (const auto &entry : suite) {
            std::vector<std::string> row{entry.profile.name};
            for (const auto &[variant, baseline] : rows) {
                sim::SimResult v = store.get(variant, entry);
                sim::SimResult b = store.get(baseline, entry);
                if (v.tombstone || b.tombstone) {
                    row.push_back("-");
                    continue;
                }
                row.push_back(fmt(metric(v) / metric(b)));
            }
            detail.addRow(row);
        }
        std::printf("%s\n", detail.render().c_str());
    }
}

void
printAbsoluteFigure(const std::string &title,
                    const std::vector<std::string> &models,
                    sim::ResultStore &store,
                    const std::vector<workload::SuiteEntry> &suite,
                    const Metric &metric, int precision)
{
    std::printf("%s\n", title.c_str());
    stats::TextTable table;
    std::vector<std::string> header{"model"};
    header.insert(header.end(), kGroupColumns.begin(),
                  kGroupColumns.end());
    table.addRow(header);
    const CellFormat fmt = [precision](double v) {
        return stats::TextTable::num(v, precision);
    };
    for (const auto &model : models) {
        auto results = store.getSuite(model, suite);
        std::vector<sim::SimResult> healthy;
        healthy.reserve(results.size());
        for (const auto &r : results) {
            if (!r.tombstone)
                healthy.push_back(r);
        }
        std::vector<std::string> row{model};
        auto cells = summaryCells(healthy, metric, fmt);
        row.insert(row.end(), cells.begin(), cells.end());
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace parrot::bench
