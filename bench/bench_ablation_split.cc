/**
 * @file
 * Ablation — the split-core design space (the paper's declared future
 * work, §5): how the TOS split microarchitecture responds to the
 * cross-core state-switch cost and to the hot core's width.
 *
 * The state-switch mechanism forwards every register written since the
 * last switch (§2.3); its base latency is swept here, alongside the
 * hot core width, against the unified TON/TOW alternatives.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    const auto suite = workload::smallSuite();

    sim::RunOptions opts;
    opts.instBudget = bench::benchInstBudget();
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);

    auto run_avg = [&](const sim::ModelConfig &cfg, double &ipc,
                       double &energy) {
        ipc = 0.0;
        energy = 0.0;
        for (const auto &r : runner.runSuite(cfg, suite)) {
            ipc += r.ipc;
            energy += r.dynamicEnergy;
        }
        ipc /= static_cast<double>(suite.size());
        energy /= static_cast<double>(suite.size());
    };

    std::printf("Ablation: split-core state-switch penalty (TOS, %zu "
                "apps)\n", suite.size());
    stats::TextTable sw_table;
    sw_table.addRow({"switch-penalty", "IPC", "dynE(uJ)"});
    for (unsigned penalty : {0u, 2u, 4u, 8u, 16u}) {
        auto cfg = sim::ModelConfig::make("TOS");
        cfg.stateSwitchPenalty = penalty;
        double ipc, energy;
        run_avg(cfg, ipc, energy);
        sw_table.addRow({
            std::to_string(penalty),
            stats::TextTable::num(ipc, 3),
            stats::TextTable::num(energy * 1e-6, 2),
        });
    }
    std::printf("%s\n", sw_table.render().c_str());

    std::printf("Ablation: split hot-core width vs unified designs\n");
    stats::TextTable w_table;
    w_table.addRow({"design", "IPC", "dynE(uJ)"});
    for (unsigned width : {4u, 6u, 8u}) {
        auto cfg = sim::ModelConfig::make("TOS");
        cfg.hotCore.width = width;
        cfg.hotCore.issueWidth = width;
        cfg.name = "TOS-hot" + std::to_string(width);
        double ipc, energy;
        run_avg(cfg, ipc, energy);
        w_table.addRow({
            cfg.name,
            stats::TextTable::num(ipc, 3),
            stats::TextTable::num(energy * 1e-6, 2),
        });
    }
    for (const char *unified : {"TON", "TOW"}) {
        double ipc, energy;
        run_avg(sim::ModelConfig::make(unified), ipc, energy);
        w_table.addRow({
            unified,
            stats::TextTable::num(ipc, 3),
            stats::TextTable::num(energy * 1e-6, 2),
        });
    }
    std::printf("%s\n", w_table.render().c_str());
    return 0;
}
