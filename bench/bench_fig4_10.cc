/**
 * @file
 * Figure 4.10 — utilization of the optimizer's work: the average
 * number of dynamic executions of each optimized trace (TOW).
 *
 * Paper shape: highest reuse on SpecFP (hundreds of executions per
 * optimized trace) thanks to the good locality of traces, lower on the
 * irregular groups — the reuse that amortizes the optimizer's energy.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();

    bench::printAbsoluteFigure(
        "Figure 4.10: executions per optimized trace (TOW)", {"TOW"},
        store, suite,
        [](const sim::SimResult &r) {
            return std::max(r.optimizerUtilization, 1e-6);
        },
        1);

    bench::printAbsoluteFigure(
        "Supplement: optimized traces per application (TOW)", {"TOW"},
        store, suite,
        [](const sim::SimResult &r) {
            return std::max(static_cast<double>(r.tracesOptimized),
                            1e-6);
        },
        0);
    return store.exitCode();
}
