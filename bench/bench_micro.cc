/**
 * @file
 * Google-benchmark microbenchmarks of the infrastructure itself:
 * simulator throughput per model, functional-executor speed, optimizer
 * pass cost, and the hot structures (cache, predictor, filter).
 */

#include <benchmark/benchmark.h>

#include "memory/cache.hh"
#include "optimizer/optimizer.hh"
#include "sim/simulator.hh"
#include "tracecache/constructor.hh"
#include "tracecache/filter.hh"
#include "tracecache/selector.hh"
#include "workload/apps.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace
{

using namespace parrot;

const sim::Workload &
sharedWorkload()
{
    static sim::Workload w =
        sim::loadWorkload(workload::findApp("word"));
    return w;
}

void
BM_FunctionalExecutor(benchmark::State &state)
{
    const auto &w = sharedWorkload();
    workload::Executor ex(*w.program, w.profile);
    workload::DynInst d;
    for (auto _ : state) {
        ex.next(d);
        benchmark::DoNotOptimize(d.nextPc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecutor);

void
BM_SimulatorModel(benchmark::State &state, const char *model)
{
    const auto &w = sharedWorkload();
    std::uint64_t insts = 20000;
    for (auto _ : state) {
        sim::ParrotSimulator sim(sim::ModelConfig::make(model), w);
        auto r = sim.run(insts, 0.0);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(insts));
}
BENCHMARK_CAPTURE(BM_SimulatorModel, N, "N");
BENCHMARK_CAPTURE(BM_SimulatorModel, W, "W");
BENCHMARK_CAPTURE(BM_SimulatorModel, TON, "TON");
BENCHMARK_CAPTURE(BM_SimulatorModel, TOW, "TOW");
BENCHMARK_CAPTURE(BM_SimulatorModel, TOS, "TOS");

void
BM_OptimizerPass(benchmark::State &state)
{
    const auto &w = sharedWorkload();
    workload::Executor ex(*w.program, w.profile);
    tracecache::TraceSelector sel;
    workload::DynInst d;
    tracecache::TraceCandidate cand, best;
    for (int i = 0; i < 50000; ++i) {
        ex.next(d);
        sel.feed(d);
        while (sel.pop(cand)) {
            if (cand.uopCount > best.uopCount)
                best = cand;
        }
    }
    optimizer::TraceOptimizer opt{optimizer::OptimizerConfig{}};
    for (auto _ : state) {
        tracecache::Trace trace = tracecache::constructTrace(best);
        auto result = opt.optimize(trace);
        benchmark::DoNotOptimize(result.uopsAfter);
    }
}
BENCHMARK(BM_OptimizerPass);

void
BM_CacheAccess(benchmark::State &state)
{
    memory::Cache cache(memory::CacheConfig{"bm", 32 * 1024, 8, 64, 3});
    Rng rng(42);
    for (auto _ : state) {
        auto result =
            cache.access(rng.below(256 * 1024) & ~63ull, false);
        benchmark::DoNotOptimize(result.hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HotFilterBump(benchmark::State &state)
{
    tracecache::CounterFilter filter(
        tracecache::FilterConfig{2048, 4, 8});
    Rng rng(7);
    tracecache::Tid tid;
    for (auto _ : state) {
        tid.startPc = 0x400000 + (rng.below(512) << 4);
        benchmark::DoNotOptimize(filter.bump(tid));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HotFilterBump);

void
BM_TraceSelection(benchmark::State &state)
{
    const auto &w = sharedWorkload();
    workload::Executor ex(*w.program, w.profile);
    tracecache::TraceSelector sel;
    workload::DynInst d;
    tracecache::TraceCandidate cand;
    for (auto _ : state) {
        ex.next(d);
        sel.feed(d);
        while (sel.pop(cand))
            benchmark::DoNotOptimize(cand.uopCount);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSelection);

} // namespace

BENCHMARK_MAIN();
