/**
 * @file
 * Figure 4.3 — improved power awareness (cubic-MIPS-per-Watt) over the
 * baseline of the same width.
 *
 * Paper shape: TON improves CMPW over N by ~32%; TOW improves over W
 * by ~92%.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.3: CMPW (power-awareness) improvement over baseline",
        {{"TN", "N"}, {"TON", "N"}, {"TW", "W"}, {"TOW", "W"}}, store,
        suite, [](const sim::SimResult &r) { return r.cmpw; },
        /*as_percent_delta=*/true, /*with_killers=*/true);
    return store.exitCode();
}
