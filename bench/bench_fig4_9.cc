/**
 * @file
 * Figure 4.9 — optimizer impact on the TOW model: reduction in the
 * number of dynamically executed uops and in the average trace
 * dependence (critical-path) height.
 *
 * Paper shape: ~19% average uop reduction, ~8% average dependence
 * reduction, with relatively higher dependence reduction on the
 * complex SpecInt code.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();

    bench::printAbsoluteFigure(
        "Figure 4.9a: dynamic uop reduction on hot traces (TOW)",
        {"TOW"}, store, suite,
        [](const sim::SimResult &r) {
            return std::max(r.dynamicUopReduction, 1e-6);
        },
        3);

    bench::printAbsoluteFigure(
        "Figure 4.9b: average dependence-height reduction (TOW)",
        {"TOW"}, store, suite,
        [](const sim::SimResult &r) {
            return std::max(r.avgDepReduction, 1e-6);
        },
        3);

    bench::printAbsoluteFigure(
        "Figure 4.9c: static uop reduction per optimized trace (TOW)",
        {"TOW"}, store, suite,
        [](const sim::SimResult &r) {
            return std::max(r.avgUopReduction, 1e-6);
        },
        3);
    return store.exitCode();
}
