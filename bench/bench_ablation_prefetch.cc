/**
 * @file
 * Ablation — next-line prefetching (an extension beyond the paper):
 * how much of the baseline's memory-boundedness a trivial prefetcher
 * recovers, and whether it changes the N-vs-TON comparison.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    const auto suite = workload::smallSuite();

    sim::RunOptions opts;
    opts.instBudget = bench::benchInstBudget();
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);

    std::printf("Ablation: next-line L1D/L1I prefetch (%zu apps)\n",
                suite.size());
    stats::TextTable table;
    table.addRow({"config", "IPC", "l1d-miss", "dynE(uJ)"});
    for (const char *model : {"N", "TON"}) {
        for (bool prefetch : {false, true}) {
            auto cfg = sim::ModelConfig::make(model);
            cfg.memory.l1dNextLinePrefetch = prefetch;
            cfg.memory.l1iNextLinePrefetch = prefetch;
            double ipc = 0, miss = 0, energy = 0;
            for (const auto &r : runner.runSuite(cfg, suite)) {
                ipc += r.ipc;
                miss += r.l1dMissRate;
                energy += r.dynamicEnergy;
            }
            const double n = static_cast<double>(suite.size());
            table.addRow({
                std::string(model) + (prefetch ? "+pf" : ""),
                stats::TextTable::num(ipc / n, 3),
                stats::TextTable::num(miss / n, 4),
                stats::TextTable::num(energy / n * 1e-6, 2),
            });
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
