/**
 * @file
 * Ablation — run length vs trace coverage.
 *
 * The paper simulates 30-100M instructions per application; this
 * reproduction defaults to 300K. This sweep quantifies the warmup
 * effect that caps coverage at short run lengths (the root cause of
 * the INT coverage deviation documented in EXPERIMENTS.md).
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    const auto suite = workload::smallSuite();

    std::printf("Ablation: instruction budget vs coverage (TON, %zu "
                "apps)\n", suite.size());
    stats::TextTable table;
    table.addRow({"insts", "coverage", "IPC", "TON-vs-N IPC"});
    for (std::uint64_t insts :
         {100000ull, 200000ull, 400000ull, 800000ull}) {
        sim::RunOptions opts;
        opts.instBudget = insts;
        opts.noLeakage = true;
        sim::SuiteRunner runner(opts);
        auto ton_results = runner.runSuite("TON", suite);
        auto n_results = runner.runSuite("N", suite);
        double cov = 0, ipc = 0, base_ipc = 0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            cov += ton_results[i].coverage;
            ipc += ton_results[i].ipc;
            base_ipc += n_results[i].ipc;
        }
        const double k = static_cast<double>(suite.size());
        table.addRow({
            std::to_string(insts),
            stats::TextTable::num(cov / k, 3),
            stats::TextTable::num(ipc / k, 3),
            stats::TextTable::pct(ipc / base_ipc - 1.0),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
