/**
 * @file
 * Simulator-throughput harness: host-MIPS (millions of simulated
 * instructions per host second) per model, the number every hot-path
 * optimization is judged by.
 *
 * Methodology:
 *  - each (model, app) pair is constructed once per repeat, and only
 *    ParrotSimulator::run() is timed — workload generation and stats
 *    registration are setup cost, not steady-state throughput;
 *  - best-of-N wall time is reported (minimum is the standard estimator
 *    for noise-free capability on a shared machine);
 *  - a fixed integer-mixing loop is timed as `host_score` so CI can
 *    normalize MIPS across machines of different speeds before
 *    comparing against the committed baseline.
 *
 * Output: a human table on stdout and BENCH_throughput.json (see
 * EXPERIMENTS.md for the CI perf-smoke recipe).
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "sim/model_config.hh"
#include "sim/simulator.hh"
#include "workload/apps.hh"

namespace
{

using namespace parrot;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * A deterministic integer-mixing loop (xorshift-style) timed as a
 * machine-speed proxy. Returns mega-iterations per second; CI divides
 * MIPS by this to compare runs from different hosts.
 */
double
hostScore()
{
    constexpr std::uint64_t kIters = 50'000'000;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        volatile std::uint64_t sink = 0;
        std::uint64_t x = 0x9e3779b97f4a7c15ull;
        auto start = Clock::now();
        for (std::uint64_t i = 0; i < kIters; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        sink = x;
        (void)sink;
        double score =
            static_cast<double>(kIters) / 1e6 / secondsSince(start);
        if (score > best)
            best = score;
    }
    return best;
}

struct Row
{
    std::string model;
    std::string app;
    std::uint64_t insts = 0;
    double bestSecs = 0.0;
    double mips = 0.0;

    // --sample mode: the same cell run sampled, with the achieved
    // speedup and the measured error of the extrapolated estimates
    // against the detailed run — the error-bound report that tells us
    // whether a window:stride choice is trustworthy.
    bool sampled = false;
    double sampledBestSecs = 0.0;
    double speedup = 0.0;
    double cpiErr = 0.0;    //!< |sampled CPI - detailed CPI| / detailed
    double energyErr = 0.0; //!< same for dynamic energy per inst
    double ciCpi = 0.0;     //!< the sampled run's own stated 95% CI
    double ciEnergy = 0.0;
    double sampleCoverage = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t insts = 400000;
    unsigned repeat = 3;
    std::string app = "swim";
    std::string out_path = "BENCH_throughput.json";
    std::vector<std::string> models = {"N", "W", "TON", "TOW"};
    std::uint64_t sample_window = 0;
    std::uint64_t sample_stride = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--insts")) {
            insts = cli::parseU64(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--sample")) {
            const std::string spec = cli::needValue(argc, argv, i);
            const auto colon = spec.find(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= spec.size()) {
                std::fprintf(stderr,
                             "--sample expects WINDOW:STRIDE\n");
                return 2;
            }
            sample_window =
                cli::parseU64(arg, spec.substr(0, colon).c_str());
            sample_stride =
                cli::parseU64(arg, spec.substr(colon + 1).c_str());
            if (sample_window == 0 || sample_stride <= sample_window) {
                std::fprintf(stderr, "--sample needs WINDOW > 0 and "
                                     "STRIDE > WINDOW\n");
                return 2;
            }
        } else if (!std::strcmp(arg, "--repeat")) {
            repeat = cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--app")) {
            app = cli::needValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--out")) {
            out_path = cli::needValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--models")) {
            // Comma-separated list, e.g. --models N,TON
            models.clear();
            std::string list = cli::needValue(argc, argv, i);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = list.find(',', pos);
                std::string m = list.substr(
                    pos, comma == std::string::npos ? comma
                                                    : comma - pos);
                if (!m.empty())
                    models.push_back(m);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --insts N, "
                         "--repeat N, --app NAME, --models A,B, "
                         "--sample W:S, --out PATH)\n",
                         arg);
            return 2;
        }
    }
    if (insts == 0 || repeat == 0 || models.empty()) {
        std::fprintf(stderr, "nothing to measure\n");
        return 2;
    }

    const double host_score = hostScore();
    std::printf("host_score %.1f Mmix/s\n", host_score);

    sim::Workload workload = sim::loadWorkload(workload::findApp(app));

    std::vector<Row> rows;
    for (const auto &model : models) {
        Row row;
        row.model = model;
        row.app = app;
        sim::SimResult detailed;
        for (unsigned r = 0; r < repeat; ++r) {
            // Fresh simulator per repeat: steady-state throughput of
            // one simulation, not warm-cache reuse across runs.
            sim::ModelConfig cfg = sim::ModelConfig::make(model);
            sim::ParrotSimulator s(cfg, workload);
            auto start = Clock::now();
            sim::SimResult res = s.run(insts, /*pmax_per_cycle=*/0.0);
            double secs = secondsSince(start);
            row.insts = res.insts;
            detailed = res;
            if (r == 0 || secs < row.bestSecs)
                row.bestSecs = secs;
        }
        row.mips = static_cast<double>(row.insts) / 1e6 / row.bestSecs;
        std::printf("%-5s %-10s %9llu insts  best %.3fs  %7.2f MIPS\n",
                    row.model.c_str(), row.app.c_str(),
                    static_cast<unsigned long long>(row.insts),
                    row.bestSecs, row.mips);

        if (sample_window > 0) {
            // Same cell, sampled: report the wall-clock speedup and
            // how far the extrapolated CPI / energy-per-inst land from
            // the detailed truth, next to the run's own stated CI.
            sim::SimResult sampled;
            for (unsigned r = 0; r < repeat; ++r) {
                sim::ModelConfig cfg = sim::ModelConfig::make(model);
                cfg.sampleWindow = sample_window;
                cfg.sampleStride = sample_stride;
                sim::ParrotSimulator s(cfg, workload);
                auto start = Clock::now();
                sampled = s.run(insts, /*pmax_per_cycle=*/0.0);
                double secs = secondsSince(start);
                if (r == 0 || secs < row.sampledBestSecs)
                    row.sampledBestSecs = secs;
            }
            row.sampled = true;
            row.speedup = row.bestSecs / row.sampledBestSecs;
            const double d_cpi = static_cast<double>(detailed.cycles) /
                                 static_cast<double>(detailed.insts);
            const double s_cpi = static_cast<double>(sampled.cycles) /
                                 static_cast<double>(sampled.insts);
            const double d_epi = detailed.dynamicEnergy /
                                 static_cast<double>(detailed.insts);
            const double s_epi = sampled.dynamicEnergy /
                                 static_cast<double>(sampled.insts);
            row.cpiErr = std::abs(s_cpi - d_cpi) / d_cpi;
            row.energyErr = std::abs(s_epi - d_epi) / d_epi;
            row.ciCpi = sampled.sampleCiIpc;
            row.ciEnergy = sampled.sampleCiEnergy;
            row.sampleCoverage = sampled.sampleCoverage;
            std::printf("%-5s %-10s   sampled %llu:%llu  best %.3fs  "
                        "%.1fx faster  cpi_err %.2f%% (ci %.2f%%)  "
                        "energy_err %.2f%% (ci %.2f%%)  coverage "
                        "%.1f%%\n",
                        row.model.c_str(), row.app.c_str(),
                        static_cast<unsigned long long>(sample_window),
                        static_cast<unsigned long long>(sample_stride),
                        row.sampledBestSecs, row.speedup,
                        100.0 * row.cpiErr, 100.0 * row.ciCpi,
                        100.0 * row.energyErr, 100.0 * row.ciEnergy,
                        100.0 * row.sampleCoverage);
        }
        rows.push_back(row);
    }

    std::ostringstream out;
    out.precision(6);
    out << "{\n  \"host_score\": " << host_score
        << ",\n  \"insts\": " << insts << ",\n  \"app\": \"" << app
        << "\",\n  \"repeat\": " << repeat;
    if (sample_window > 0) {
        out << ",\n  \"sample_window\": " << sample_window
            << ",\n  \"sample_stride\": " << sample_stride;
    }
    out << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        out << "    {\"model\": \"" << r.model << "\", \"mips\": "
            << r.mips << ", \"best_secs\": " << r.bestSecs
            << ", \"insts\": " << r.insts;
        if (r.sampled) {
            out << ", \"sampled_best_secs\": " << r.sampledBestSecs
                << ", \"speedup\": " << r.speedup
                << ", \"cpi_err\": " << r.cpiErr
                << ", \"energy_err\": " << r.energyErr
                << ", \"ci_cpi\": " << r.ciCpi
                << ", \"ci_energy\": " << r.ciEnergy
                << ", \"sample_coverage\": " << r.sampleCoverage;
        }
        out << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    // Atomic replace so a crash or full disk can't leave a truncated
    // baseline JSON behind for later comparisons.
    std::string err;
    if (!atomic_file::writeFileAtomic(out_path, out.str(), &err)) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     err.c_str());
        return 2;
    }
    return 0;
}
