/**
 * @file
 * Power-awareness frontier sweep: frequency x gating policy x model.
 *
 * The paper's CMPW metric rewards designs that buy performance
 * cheaply in power. This driver turns the two new power axes — the
 * DVFS operating point and the unit-gating policy — into a sweep over
 * the trace-cache models and reports, per operating point, the
 * suite-average performance, energy breakdown (dynamic / net leakage /
 * leakage saved by gating) and CMPW, plus the gating activity
 * counters. Points on the Pareto frontier of (wall-time MIPS, total
 * energy) are flagged, so the table reads as "which (model, f, gate)
 * combinations are worth building".
 *
 * One SuiteRunner is shared across the whole sweep: Pmax is calibrated
 * once (swim on N at nominal frequency, §3.2) and every operating
 * point is judged against that same reference, exactly like the
 * paper's fixed-Pmax leakage formula.
 *
 * Output: a human table on stdout and a JSON dump (default
 * BENCH_power_frontier.json; see EXPERIMENTS.md for the committed
 * baseline recipe and the CI smoke job).
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "common/cli.hh"
#include "common/bench_util.hh"
#include "power/power_state.hh"
#include "stats/table.hh"

namespace
{

using namespace parrot;

struct SweepPoint
{
    std::string model;
    double freqGHz = 1.0;
    power::GateMode gate = power::GateMode::Off;

    // Suite averages.
    double ipc = 0.0;
    double mips = 0.0; //!< wall-time MIPS: IPC x frequency (GHz)
    double dynE = 0.0;
    double leakE = 0.0;
    double savedE = 0.0;
    double totalE = 0.0;
    double cmpw = 0.0;
    double gatedCycles = 0.0;
    double wakeStalls = 0.0;
    bool onFrontier = false;
};

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        std::string item = list.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Pareto frontier in (mips up, totalE down). */
void
markFrontier(std::vector<SweepPoint> &points)
{
    for (auto &p : points) {
        p.onFrontier = true;
        for (const auto &q : points) {
            if (&q == &p)
                continue;
            bool dominates = q.mips >= p.mips && q.totalE <= p.totalE &&
                             (q.mips > p.mips || q.totalE < p.totalE);
            if (dominates) {
                p.onFrontier = false;
                break;
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> models = {"TON", "TOW"};
    std::vector<double> freqs = {0.8, 1.0, 1.2};
    std::vector<power::GateMode> gates = {power::GateMode::Off,
                                          power::GateMode::ClockGate,
                                          power::GateMode::PowerGate};
    std::uint64_t insts = bench::benchInstBudget();
    unsigned jobs = 0;
    std::string out_path = "BENCH_power_frontier.json";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--insts")) {
            insts = cli::parseU64(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = cli::parseU32(arg, cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--out")) {
            out_path = cli::needValue(argc, argv, i);
        } else if (!std::strcmp(arg, "--models")) {
            models = splitList(cli::needValue(argc, argv, i));
        } else if (!std::strcmp(arg, "--freqs")) {
            freqs.clear();
            for (const auto &f :
                 splitList(cli::needValue(argc, argv, i)))
                freqs.push_back(cli::parseF64("--freqs", f.c_str()));
        } else if (!std::strcmp(arg, "--gates")) {
            gates.clear();
            for (const auto &g :
                 splitList(cli::needValue(argc, argv, i))) {
                power::GateMode mode;
                if (!power::parseGateMode(g, mode)) {
                    std::fprintf(stderr, "bad gate mode '%s'\n",
                                 g.c_str());
                    return 2;
                }
                gates.push_back(mode);
            }
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (supported: --insts N, "
                         "--jobs N, --models A,B, --freqs F,G, "
                         "--gates off,clock,power, --out PATH)\n",
                         arg);
            return 2;
        }
    }
    if (models.empty() || freqs.empty() || gates.empty()) {
        std::fprintf(stderr, "nothing to sweep\n");
        return 2;
    }

    const auto suite = workload::smallSuite();
    sim::RunOptions opts;
    opts.instBudget = insts;
    opts.jobs = jobs;
    sim::SuiteRunner runner(opts);
    std::printf("Power frontier sweep: %zu models x %zu freqs x %zu "
                "gate policies, %zu apps, %llu insts (Pmax %.2f "
                "pJ/cycle)\n",
                models.size(), freqs.size(), gates.size(), suite.size(),
                static_cast<unsigned long long>(insts), runner.pmax());

    std::vector<SweepPoint> points;
    for (const auto &model : models) {
        for (double f : freqs) {
            for (power::GateMode gate : gates) {
                sim::ModelConfig cfg = sim::ModelConfig::make(model);
                cfg.freqGHz = f;
                cfg.powerState.applyAll(gate);
                SweepPoint p;
                p.model = model;
                p.freqGHz = f;
                p.gate = gate;
                const auto results = runner.runSuite(cfg, suite);
                const double n = static_cast<double>(results.size());
                for (const auto &r : results) {
                    p.ipc += r.ipc / n;
                    p.dynE += r.dynamicEnergy / n;
                    p.leakE += r.leakageEnergy / n;
                    p.savedE += r.leakageSavedEnergy / n;
                    p.totalE += r.totalEnergy / n;
                    p.cmpw += r.cmpw / n;
                    p.gatedCycles +=
                        static_cast<double>(r.powerGatedCycles) / n;
                    p.wakeStalls +=
                        static_cast<double>(r.powerWakeStalls) / n;
                }
                p.mips = p.ipc * f * 1000.0;
                points.push_back(p);
            }
        }
    }
    markFrontier(points);

    stats::TextTable table;
    table.addRow({"model", "f(GHz)", "gate", "IPC", "MIPS", "dynE(uJ)",
                  "leakE(uJ)", "saved(uJ)", "CMPW", "wake-stalls",
                  "frontier"});
    for (const auto &p : points) {
        table.addRow({
            p.model,
            stats::TextTable::num(p.freqGHz, 2),
            power::gateModeName(p.gate),
            stats::TextTable::num(p.ipc, 3),
            stats::TextTable::num(p.mips, 0),
            stats::TextTable::num(p.dynE * 1e-6, 2),
            stats::TextTable::num(p.leakE * 1e-6, 2),
            stats::TextTable::num(p.savedE * 1e-6, 2),
            stats::TextTable::num(p.cmpw, 3),
            stats::TextTable::num(p.wakeStalls, 0),
            p.onFrontier ? "*" : "",
        });
    }
    std::printf("%s\n", table.render().c_str());

    std::ostringstream out;
    out.precision(6);
    out << "{\n  \"insts\": " << insts << ",\n  \"apps\": "
        << suite.size() << ",\n  \"pmax\": " << runner.pmax()
        << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        out << "    {\"model\": \"" << p.model << "\", \"freq_ghz\": "
            << p.freqGHz << ", \"gate\": \""
            << power::gateModeName(p.gate) << "\", \"ipc\": " << p.ipc
            << ", \"mips\": " << p.mips << ", \"dynamic\": " << p.dynE
            << ", \"leakage\": " << p.leakE << ", \"leakage_saved\": "
            << p.savedE << ", \"total\": " << p.totalE << ", \"cmpw\": "
            << p.cmpw << ", \"gated_cycles\": " << p.gatedCycles
            << ", \"wake_stalls\": " << p.wakeStalls
            << ", \"frontier\": " << (p.onFrontier ? "true" : "false")
            << "}" << (i + 1 < points.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::string err;
    if (!atomic_file::writeFileAtomic(out_path, out.str(), &err)) {
        std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                     err.c_str());
        return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
