/**
 * @file
 * Figure 4.6 — power awareness (CMPW) relative to the 4-wide baseline.
 *
 * Paper shape: the PARROT extensions dominate mere widening — TON's
 * CMPW is ~67% better than W's, and TOW improves ~51% over N.
 */

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    bench::ResultStore store;
    auto suite = workload::fullSuite();
    bench::printRelativeFigure(
        "Figure 4.6: CMPW relative to the 4-wide baseline N",
        {{"W", "N"}, {"TON", "N"}, {"TOW", "N"}, {"TOS", "N"}}, store,
        suite, [](const sim::SimResult &r) { return r.cmpw; },
        /*as_percent_delta=*/true, /*with_killers=*/false);

    bench::printRelativeFigure(
        "Cross-check: TON vs W (paper: ~67% better CMPW)", {{"TON", "W"}},
        store, suite, [](const sim::SimResult &r) { return r.cmpw; },
        /*as_percent_delta=*/true, /*with_killers=*/false);
    return store.exitCode();
}
