/**
 * @file
 * Ablation — trace-cache capacity vs coverage (DESIGN.md §7).
 *
 * The paper notes coverage "represents the quality of the trace
 * prediction, selection and filtering mechanisms with respect to the
 * trace-cache size". This sweep quantifies that: frames from 64 to
 * 2048 on the TON model.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;
    bench::parseBenchArgs(argc, argv);
    const auto suite = workload::smallSuite();

    sim::RunOptions opts;
    opts.instBudget = bench::benchInstBudget();
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);

    std::printf("Ablation: trace-cache frames vs coverage (TON, %zu "
                "apps)\n", suite.size());
    stats::TextTable table;
    table.addRow({"frames", "coverage", "IPC", "evictions",
                  "dynE(uJ)"});
    for (unsigned frames : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        auto cfg = sim::ModelConfig::make("TON");
        cfg.traceCache.numEntries = frames;
        double cov = 0, ipc = 0, energy = 0;
        for (const auto &r : runner.runSuite(cfg, suite)) {
            cov += r.coverage;
            ipc += r.ipc;
            energy += r.dynamicEnergy;
        }
        const double n = static_cast<double>(suite.size());
        table.addRow({
            std::to_string(frames),
            stats::TextTable::num(cov / n, 3),
            stats::TextTable::num(ipc / n, 3),
            "-",
            stats::TextTable::num(energy / n * 1e-6, 2),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
