/**
 * @file
 * Ablation — trace-cache capacity vs coverage (DESIGN.md §7).
 *
 * The paper notes coverage "represents the quality of the trace
 * prediction, selection and filtering mechanisms with respect to the
 * trace-cache size". This sweep quantifies that: frames from 64 to
 * 2048 on the TON model.
 */

#include <cstdio>

#include "common/bench_util.hh"
#include "stats/table.hh"

int
main()
{
    using namespace parrot;
    const auto suite = workload::smallSuite();
    const std::uint64_t insts = bench::benchInstBudget();

    std::printf("Ablation: trace-cache frames vs coverage (TON, %zu "
                "apps)\n", suite.size());
    stats::TextTable table;
    table.addRow({"frames", "coverage", "IPC", "evictions",
                  "dynE(uJ)"});
    for (unsigned frames : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
        double cov = 0, ipc = 0, evict = 0, energy = 0;
        for (const auto &entry : suite) {
            auto cfg = sim::ModelConfig::make("TON");
            cfg.traceCache.numEntries = frames;
            sim::ParrotSimulator s(cfg, sim::loadWorkload(entry));
            auto r = s.run(insts, 0.0);
            cov += r.coverage;
            ipc += r.ipc;
            energy += r.dynamicEnergy;
            (void)evict;
        }
        const double n = static_cast<double>(suite.size());
        table.addRow({
            std::to_string(frames),
            stats::TextTable::num(cov / n, 3),
            stats::TextTable::num(ipc / n, 3),
            "-",
            stats::TextTable::num(energy / n * 1e-6, 2),
        });
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
