/**
 * @file
 * parrot_cli — the full-featured command-line front door to the
 * simulator. Runs any (model | config file) x application combination
 * and reports either a human-readable summary or machine-readable
 * key=value output for scripting.
 *
 * Usage:
 *   parrot_cli [options]
 *     --model NAME        one of N W TN TW TON TOW TOS (default TON)
 *     --config FILE       model config file (overrides --model)
 *     --app NAME          application (default swim); repeatable
 *     --group NAME        run a whole group (SpecInt SpecFP Office
 *                         Multimedia DotNet) or "all"
 *     --insts N           committed-instruction budget (default 300000)
 *     --jobs N            worker threads for multi-app runs
 *                         (default: PARROT_JOBS or all hardware threads)
 *     --pmax X            leakage Pmax per cycle (default: calibrate)
 *     --freq F            clock frequency in GHz (default 1.0);
 *                         scales dynamic energy ~f*V^2, leakage by
 *                         wall time, memory latency in cycles
 *     --gate MODE         power-gating policy for all gateable units:
 *                         off | clock | power (default off)
 *     --gate-threshold N  idle cycles before a gated unit sleeps
 *     --gate-wake N       wake-up latency in cycles (a real stall)
 *     --deadline-ms N     wall-clock watchdog per simulation; a run
 *                         that exceeds it is aborted (and retried)
 *                         instead of hanging the whole suite (0 = off)
 *     --retries N         extra attempts for a failed/timed-out app
 *                         before it is reported as FAILED (default 2);
 *                         any failed app makes the exit status 3
 *     --no-leakage        disable the leakage model
 *     --cosim             run the differential co-simulation oracle
 *                         alongside the timing simulation; non-zero
 *                         mismatch counts make the exit status 1
 *     --stats-interval N  sample the stats tree every N cycles into a
 *                         windowed time-series (0 = off, the default);
 *                         sampling never changes simulation results
 *     --stats-out FILE    write the sampled time-series to FILE as a
 *                         JSON array of run objects, or as CSV when
 *                         FILE ends in .csv (requires --stats-interval)
 *     --sample N:M        SMARTS-style sampled simulation: simulate
 *                         an N-instruction detailed window every M
 *                         instructions and fast-forward (functional +
 *                         warm-state) between windows; extensive
 *                         metrics are extrapolated and sample.*
 *                         confidence intervals reported (M > N)
 *     --checkpoint-out F  after the (single) app's run, save the full
 *                         warm state to F so a later run can resume
 *     --checkpoint-in F   resume the (single) app's run from a
 *                         checkpoint saved by --checkpoint-out; a
 *                         corrupt or mismatched checkpoint makes the
 *                         exit status 2 with a category-specific error
 *     --trace-out FILE    record the (single) selected application's
 *                         committed stream to FILE as a `.ptrace`
 *                         recording covering --insts instructions
 *                         (plus the replay margin), then exit
 *     --trace-in FILE     simulate a recorded `.ptrace` file instead
 *                         of the synthetic generator; repeatable.
 *                         Unless --insts is given, the budget is the
 *                         smallest intended budget among the traces.
 *                         A malformed trace file makes the exit
 *                         status 2 (the remaining valid traces still
 *                         run; 2 outranks the degraded exit 3 and the
 *                         cosim alarm 1 — see cli::combinedExit).
 *     --kv                key=value output (for scripts)
 *     --dump-config       print the effective model configuration
 *     --list-apps         list the 44 applications and exit
 *     --list-models       list the named models and exit
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "parrot/parrot.hh"
#include "sim/checkpoint.hh"
#include "sim/config_file.hh"

namespace
{

using namespace parrot;

/**
 * Render a ratio whose denominator never incremented as "-" instead
 * of a misleading 0 (a model without a trace cache has no abort rate,
 * it just never predicted).
 */
std::string
ratioOrDash(double value, std::uint64_t denom, const char *format)
{
    if (denom == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, format, value);
    return buf;
}

void
printKv(const sim::SimResult &r)
{
    if (r.tombstone) {
        std::printf("model=%s app=%s failed=1 attempts=%u\n",
                    r.model.c_str(), r.app.c_str(), r.attempts);
        return;
    }
    std::printf("model=%s app=%s insts=%llu cycles=%llu ipc=%.6f "
                "upc=%.6f coverage=%.6f dynamic_energy=%.6e "
                "leakage_energy=%.6e total_energy=%.6e cmpw=%.6e "
                "branch_mispredict=%s trace_mispredict=%s "
                "traces_inserted=%llu traces_optimized=%llu "
                "uop_reduction=%.6f l1d_miss=%.6f\n",
                r.model.c_str(), r.app.c_str(),
                static_cast<unsigned long long>(r.insts),
                static_cast<unsigned long long>(r.cycles), r.ipc, r.upc,
                r.coverage, r.dynamicEnergy, r.leakageEnergy,
                r.totalEnergy, r.cmpw,
                ratioOrDash(r.coldBranchMispredRate, r.coldCondBranches,
                            "%.6f").c_str(),
                ratioOrDash(r.traceMispredRate, r.tracePredictions,
                            "%.6f").c_str(),
                static_cast<unsigned long long>(r.tracesInserted),
                static_cast<unsigned long long>(r.tracesOptimized),
                r.dynamicUopReduction, r.l1dMissRate);
    if (r.sampleWindows > 0) {
        std::printf("sample model=%s app=%s windows=%llu "
                    "coverage=%.6f ci_ipc=%.6f ci_energy=%.6f\n",
                    r.model.c_str(), r.app.c_str(),
                    static_cast<unsigned long long>(r.sampleWindows),
                    r.sampleCoverage, r.sampleCiIpc, r.sampleCiEnergy);
    }
    if (r.cosimEnabled) {
        std::printf("cosim model=%s app=%s cold_commits=%llu "
                    "trace_commits=%llu mismatches=%llu\n",
                    r.model.c_str(), r.app.c_str(),
                    static_cast<unsigned long long>(r.cosimColdCommits),
                    static_cast<unsigned long long>(r.cosimTraceCommits),
                    static_cast<unsigned long long>(r.cosimMismatches));
    }
}

void
printHuman(const sim::SimResult &r)
{
    if (r.tombstone) {
        std::printf("%s on %s: FAILED after %u attempt(s)\n",
                    r.model.c_str(), r.app.c_str(), r.attempts);
        return;
    }
    std::printf("%s on %s: %llu insts in %llu cycles\n", r.model.c_str(),
                r.app.c_str(), static_cast<unsigned long long>(r.insts),
                static_cast<unsigned long long>(r.cycles));
    std::printf("  IPC %.3f (%.3f uops/cycle), coverage %.1f%%\n", r.ipc,
                r.upc, 100.0 * r.coverage);
    std::printf("  energy %.2f uJ (%.2f dynamic + %.2f leakage), "
                "CMPW %.3g\n",
                r.totalEnergy * 1e-6, r.dynamicEnergy * 1e-6,
                r.leakageEnergy * 1e-6, r.cmpw);
    if (r.tracesInserted > 0) {
        std::string abort_pct = ratioOrDash(
            100.0 * r.traceMispredRate, r.tracePredictions, "%.1f%%");
        std::printf("  traces: %llu cached, %llu optimized, abort rate "
                    "%s, uop reduction %.1f%%\n",
                    static_cast<unsigned long long>(r.tracesInserted),
                    static_cast<unsigned long long>(r.tracesOptimized),
                    abort_pct.c_str(), 100.0 * r.dynamicUopReduction);
    }
    if (r.sampleWindows > 0) {
        std::printf("  sampled: %llu window(s), %.1f%% detailed "
                    "coverage, 95%% CI ipc ±%.1f%% energy ±%.1f%%\n",
                    static_cast<unsigned long long>(r.sampleWindows),
                    100.0 * r.sampleCoverage, 100.0 * r.sampleCiIpc,
                    100.0 * r.sampleCiEnergy);
    }
    if (r.cosimEnabled) {
        std::printf("  cosim: %llu cold + %llu trace commits checked, "
                    "%llu mismatches%s\n",
                    static_cast<unsigned long long>(r.cosimColdCommits),
                    static_cast<unsigned long long>(r.cosimTraceCommits),
                    static_cast<unsigned long long>(r.cosimMismatches),
                    r.cosimMismatches == 0 ? " (clean)" : "");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace parrot;

    std::string model = "TON";
    std::string config_path;
    std::vector<std::string> apps;
    std::string group;
    std::uint64_t insts = 300000;
    unsigned jobs = 0;
    double pmax = 0.0;
    double freq_ghz = 1.0;
    std::string gate_mode;
    unsigned gate_threshold = 0;
    unsigned gate_wake = 0;
    bool gate_threshold_set = false;
    bool gate_wake_set = false;
    std::uint64_t deadline_ms = 0;
    unsigned retries = 2;
    bool no_leakage = false;
    bool kv = false;
    bool dump_config = false;
    bool cosim = false;
    unsigned stats_interval = 0;
    std::string stats_out;
    std::string trace_out;
    std::vector<std::string> trace_in;
    bool insts_set = false;
    std::uint64_t sample_window = 0;
    std::uint64_t sample_stride = 0;
    std::string ckpt_out;
    std::string ckpt_in;

    auto need_value = [&](int &i) -> const char * {
        return cli::needValue(argc, argv, i);
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--model")) {
            model = need_value(i);
        } else if (!std::strcmp(arg, "--config")) {
            config_path = need_value(i);
        } else if (!std::strcmp(arg, "--app")) {
            apps.push_back(need_value(i));
        } else if (!std::strcmp(arg, "--group")) {
            group = need_value(i);
        } else if (!std::strcmp(arg, "--insts")) {
            insts = cli::parseU64(arg, need_value(i));
            insts_set = true;
        } else if (!std::strcmp(arg, "--trace-out")) {
            trace_out = need_value(i);
        } else if (!std::strcmp(arg, "--trace-in")) {
            trace_in.push_back(need_value(i));
        } else if (!std::strcmp(arg, "--jobs")) {
            jobs = cli::parseU32(arg, need_value(i));
        } else if (!std::strcmp(arg, "--pmax")) {
            pmax = cli::parseF64(arg, need_value(i));
        } else if (!std::strcmp(arg, "--freq")) {
            freq_ghz = cli::parseF64(arg, need_value(i));
        } else if (!std::strcmp(arg, "--gate")) {
            gate_mode = need_value(i);
        } else if (!std::strcmp(arg, "--gate-threshold")) {
            gate_threshold = cli::parseU32(arg, need_value(i));
            gate_threshold_set = true;
        } else if (!std::strcmp(arg, "--gate-wake")) {
            gate_wake = cli::parseU32(arg, need_value(i));
            gate_wake_set = true;
        } else if (!std::strcmp(arg, "--deadline-ms")) {
            deadline_ms = cli::parseU64(arg, need_value(i));
        } else if (!std::strcmp(arg, "--retries")) {
            retries = cli::parseU32(arg, need_value(i));
        } else if (!std::strcmp(arg, "--sample")) {
            const std::string spec = need_value(i);
            const auto colon = spec.find(':');
            if (colon == std::string::npos || colon == 0 ||
                colon + 1 >= spec.size()) {
                std::fprintf(stderr,
                             "--sample expects WINDOW:STRIDE, got "
                             "'%s'\n",
                             spec.c_str());
                return cli::kExitUsage;
            }
            sample_window =
                cli::parseU64(arg, spec.substr(0, colon).c_str());
            sample_stride =
                cli::parseU64(arg, spec.substr(colon + 1).c_str());
            if (sample_window == 0 || sample_stride <= sample_window) {
                std::fprintf(stderr,
                             "--sample WINDOW:STRIDE needs WINDOW > 0 "
                             "and STRIDE > WINDOW, got %llu:%llu\n",
                             static_cast<unsigned long long>(
                                 sample_window),
                             static_cast<unsigned long long>(
                                 sample_stride));
                return cli::kExitUsage;
            }
        } else if (!std::strcmp(arg, "--checkpoint-out")) {
            ckpt_out = need_value(i);
        } else if (!std::strcmp(arg, "--checkpoint-in")) {
            ckpt_in = need_value(i);
        } else if (!std::strcmp(arg, "--stats-interval")) {
            stats_interval = cli::parseU32(arg, need_value(i));
        } else if (!std::strcmp(arg, "--stats-out")) {
            stats_out = need_value(i);
        } else if (!std::strcmp(arg, "--no-leakage")) {
            no_leakage = true;
        } else if (!std::strcmp(arg, "--cosim")) {
            cosim = true;
        } else if (!std::strcmp(arg, "--kv")) {
            kv = true;
        } else if (!std::strcmp(arg, "--dump-config")) {
            dump_config = true;
        } else if (!std::strcmp(arg, "--list-apps")) {
            for (const auto &entry : workload::fullSuite())
                std::printf("%-16s %s\n", entry.profile.name.c_str(),
                            workload::benchGroupName(
                                entry.profile.group));
            return 0;
        } else if (!std::strcmp(arg, "--list-models")) {
            for (const auto &name : sim::ModelConfig::allNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg);
            return cli::kExitUsage;
        }
    }

    if (!stats_out.empty() && stats_interval == 0) {
        std::fprintf(stderr,
                     "--stats-out requires --stats-interval N\n");
        return cli::kExitUsage;
    }

    sim::ModelConfig cfg = config_path.empty()
        ? sim::ModelConfig::make(model)
        : sim::loadModelConfig(config_path);
    if (cosim)
        cfg.cosim = true;
    if (stats_interval > 0)
        cfg.statsInterval = stats_interval;
    if (sample_window > 0) {
        cfg.sampleWindow = sample_window;
        cfg.sampleStride = sample_stride;
    }
    cfg.freqGHz = freq_ghz;
    if (!gate_mode.empty()) {
        power::GateMode mode;
        if (!power::parseGateMode(gate_mode, mode)) {
            std::fprintf(stderr,
                         "--gate expects off|clock|power, got '%s'\n",
                         gate_mode.c_str());
            return cli::kExitUsage;
        }
        cfg.powerState.applyAll(mode);
    }
    if (gate_threshold_set || gate_wake_set) {
        for (auto &p : cfg.powerState.unit) {
            if (gate_threshold_set)
                p.sleepThreshold = gate_threshold;
            if (gate_wake_set)
                p.wakeLatency = gate_wake;
        }
    }
    if (dump_config) {
        std::printf("%s", sim::renderModelConfig(cfg).c_str());
        return 0;
    }
    if (!cfg.traceFile.empty()) {
        // Validate the config-level trace redirect up front so a bad
        // file is a CLI error (exit 2), not a per-cell tombstone.
        try {
            workload::loadTraceFile(cfg.traceFile);
        } catch (const workload::TraceFormatError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return cli::kExitUsage;
        }
    }

    // Assemble the application list.
    std::vector<workload::SuiteEntry> suite;
    if (!group.empty()) {
        if (group == "all") {
            suite = workload::fullSuite();
        } else {
            for (auto &entry : workload::fullSuite()) {
                if (group == workload::benchGroupName(
                                  entry.profile.group)) {
                    suite.push_back(std::move(entry));
                }
            }
            if (suite.empty()) {
                std::fprintf(stderr, "unknown group '%s'\n",
                             group.c_str());
                return cli::kExitUsage;
            }
        }
    }
    for (const auto &app : apps)
        suite.push_back(workload::findApp(app));

    // Recording mode: dump the one selected app's committed stream and
    // exit. A recording is a fixture, not a simulation — no results.
    if (!trace_out.empty()) {
        if (!trace_in.empty()) {
            std::fprintf(stderr, "--trace-out and --trace-in are "
                                 "mutually exclusive\n");
            return cli::kExitUsage;
        }
        if (suite.empty())
            suite.push_back(workload::findApp("swim"));
        if (suite.size() != 1) {
            std::fprintf(stderr, "--trace-out records exactly one "
                                 "application (got %zu)\n",
                         suite.size());
            return cli::kExitUsage;
        }
        try {
            auto stats =
                workload::recordTrace(suite[0], insts, trace_out);
            std::printf("recorded %s: %llu records (%llu uops, %llu "
                        "CTIs) for a %llu-inst budget, %llu bytes\n",
                        stats.path.c_str(),
                        static_cast<unsigned long long>(stats.records),
                        static_cast<unsigned long long>(stats.uops),
                        static_cast<unsigned long long>(stats.ctis),
                        static_cast<unsigned long long>(
                            stats.intendedBudget),
                        static_cast<unsigned long long>(
                            stats.fileBytes));
            return 0;
        } catch (const workload::TraceFormatError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return cli::kExitUsage;
        }
    }

    // Replay mode: each --trace-in file becomes one suite cell. A
    // rejected (malformed) trace does not abort the whole run: the
    // remaining inputs still simulate, and the rejection is folded
    // into the final exit status below, where the input-error exit (2)
    // deterministically outranks alarms (1) and degraded results (3).
    bool input_error = false;
    if (!trace_in.empty()) {
        std::uint64_t min_budget = 0;
        for (const auto &path : trace_in) {
            try {
                auto entry = workload::traceSuiteEntry(path);
                if (min_budget == 0 ||
                    entry.defaultInstBudget < min_budget)
                    min_budget = entry.defaultInstBudget;
                suite.push_back(std::move(entry));
            } catch (const workload::TraceFormatError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                input_error = true;
            }
        }
        if (suite.empty()) {
            // Every requested input was rejected; there is nothing to
            // simulate and swim must not silently run in its place.
            return cli::kExitUsage;
        }
        if (!insts_set && min_budget > 0)
            insts = min_budget;
    }
    if (suite.empty())
        suite.push_back(workload::findApp("swim"));

    // Checkpoint mode: one application, one simulator instance driven
    // directly (the suite runner's retry machinery would re-run from
    // scratch, defeating the resume). A bad checkpoint file is an
    // input error: exit 2 with the category spelled out.
    if (!ckpt_out.empty() || !ckpt_in.empty()) {
        if (suite.size() != 1) {
            std::fprintf(stderr,
                         "--checkpoint-in/--checkpoint-out work on "
                         "exactly one application (got %zu)\n",
                         suite.size());
            return cli::kExitUsage;
        }
        double pmax_per_cycle = 0.0;
        if (!no_leakage) {
            if (pmax > 0.0) {
                pmax_per_cycle = pmax;
            } else {
                sim::RunOptions cal;
                cal.instBudget = insts;
                sim::SuiteRunner calibrator(cal);
                pmax_per_cycle = calibrator.pmax();
            }
        }
        sim::ParrotSimulator s(cfg, sim::loadWorkload(suite[0]));
        if (!ckpt_in.empty()) {
            try {
                s.loadCheckpoint(ckpt_in);
            } catch (const sim::CheckpointFormatError &e) {
                std::fprintf(stderr, "%s: %s [%s]\n", ckpt_in.c_str(),
                             e.what(),
                             sim::checkpointErrorName(e.category()));
                return cli::kExitUsage;
            }
        }
        sim::SimResult r;
        try {
            r = s.run(insts, pmax_per_cycle, deadline_ms);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return cli::kExitDegraded;
        }
        if (!ckpt_out.empty()) {
            try {
                s.saveCheckpoint(ckpt_out);
            } catch (const sim::CheckpointFormatError &e) {
                std::fprintf(stderr, "%s: %s [%s]\n", ckpt_out.c_str(),
                             e.what(),
                             sim::checkpointErrorName(e.category()));
                return cli::kExitUsage;
            }
        }
        if (kv)
            printKv(r);
        else
            printHuman(r);
        return cli::combinedExit(false, r.cosimMismatches != 0, false);
    }

    // The runner calibrates Pmax up front (unless given or disabled)
    // and fans the apps out over its worker pool; results come back in
    // suite order regardless of the job count.
    sim::RunOptions opts;
    opts.instBudget = insts;
    opts.pmaxPerCycle = pmax;
    opts.noLeakage = no_leakage;
    opts.jobs = jobs;
    opts.deadlineMs = deadline_ms;
    opts.maxRetries = retries;
    sim::SuiteRunner runner(opts);
    auto results = runner.runSuite(cfg, suite);
    std::uint64_t cosim_mismatches = 0;
    bool any_failed = false;
    for (const auto &r : results) {
        if (kv)
            printKv(r);
        else
            printHuman(r);
        cosim_mismatches += r.cosimMismatches;
        any_failed |= r.tombstone;
    }

    if (!stats_out.empty()) {
        std::ofstream out(stats_out);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         stats_out.c_str());
            input_error = true;
        } else {
            bool csv = stats_out.size() >= 4 &&
                       stats_out.compare(stats_out.size() - 4, 4,
                                         ".csv") == 0;
            bool first = true;
            if (csv) {
                for (const auto &r : results) {
                    if (!r.series)
                        continue;
                    r.series->writeCsv(out, r.model, r.app, first);
                    first = false;
                }
            } else {
                out << "[\n";
                for (const auto &r : results) {
                    if (!r.series)
                        continue;
                    if (!first)
                        out << ",\n";
                    first = false;
                    r.series->writeJson(out, r.model, r.app,
                                        stats_interval);
                }
                out << "\n]\n";
            }
            // A full disk or yanked mount surfaces here, not at open.
            out.flush();
            if (!out) {
                std::fprintf(stderr, "write failed: %s\n",
                             stats_out.c_str());
                input_error = true;
            }
        }
    }
    // Exit taxonomy (pinned in cli::combinedExit, precedence
    // 2 > 1 > 3 > 0): 2 = some input was rejected or an output could
    // not be written, 1 = correctness alarm (cosim mismatch), 3 = some
    // apps failed/timed out after retries — results above are degraded
    // but the run completed.
    return cli::combinedExit(input_error, cosim_mismatches != 0,
                             any_failed);
}
