/**
 * @file
 * Optimizer laboratory: harvest the hottest trace of an application,
 * print it uop by uop, run the dynamic optimizer pass by pass and show
 * what each transformation did — ending with a machine-checked
 * semantic-equivalence verdict.
 *
 * Usage: optimizer_lab [app] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "parrot/parrot.hh"

namespace
{

using namespace parrot;

void
printUops(const std::vector<tracecache::TraceUop> &uops)
{
    for (const auto &tu : uops)
        std::printf("    [inst %2d] %s\n", tu.instIdx,
                    tu.uop.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace parrot;

    const std::string app = argc > 1 ? argv[1] : "wupwise";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    auto entry = workload::findApp(app);
    auto program = workload::generateProgram(entry.profile);
    workload::Executor executor(*program, entry.profile);
    tracecache::TraceSelector selector;

    // Find the hottest sizeable candidate.
    std::unordered_map<std::uint64_t, unsigned> counts;
    tracecache::TraceCandidate best;
    unsigned best_count = 0;
    workload::DynInst dyn;
    tracecache::TraceCandidate cand;
    for (std::uint64_t i = 0; i < insts; ++i) {
        executor.next(dyn);
        selector.feed(dyn);
        while (selector.pop(cand)) {
            unsigned n = ++counts[cand.tid.hash()];
            if (n > best_count && cand.uopCount >= 16) {
                best_count = n;
                best = cand;
            }
        }
    }
    if (best.path.empty()) {
        std::printf("no sizeable hot trace found in %s\n", app.c_str());
        return 1;
    }

    std::printf("hottest trace of %s: %u occurrences, %zu insts, %u "
                "uops, unroll x%u\n\n",
                app.c_str(), best_count, best.path.size(),
                best.uopCount, best.unrollFactor);

    tracecache::Trace trace = tracecache::constructTrace(best);
    const auto original = trace.uops;
    std::printf("-- original (dependence height %u):\n",
                trace.originalDepHeight);
    printUops(trace.uops);

    struct Pass
    {
        const char *name;
        bool (*run)(optimizer::UopVec &);
    };
    const Pass passes[] = {
        {"propagate+simplify", optimizer::propagateAndSimplify},
        {"propagate+simplify (round 2)",
         optimizer::propagateAndSimplify},
        {"memory forwarding", optimizer::forwardMemory},
        {"propagate (post-forward)", optimizer::propagateAndSimplify},
        {"dead-code elimination",
         [](optimizer::UopVec &uops) {
             return optimizer::eliminateDeadCode(uops);
         }},
        {"jump promotion", optimizer::removeInternalJumps},
        {"strength reduction", optimizer::reduceStrength},
        {"cmp+assert fusion", optimizer::fuseCmpAssert},
        {"mul+add fusion", optimizer::fuseMulAdd},
        {"SIMDification", optimizer::simdifyPairs},
        {"critical-path scheduling", optimizer::scheduleCriticalPath},
    };
    for (const auto &pass : passes) {
        std::size_t before = trace.uops.size();
        unsigned dep_before = tracecache::computeDepHeight(trace.uops);
        bool changed = pass.run(trace.uops);
        unsigned dep_after = tracecache::computeDepHeight(trace.uops);
        std::printf("\n-- %-28s %s (uops %zu -> %zu, dep %u -> %u)\n",
                    pass.name, changed ? "changed" : "no-op", before,
                    trace.uops.size(), dep_before, dep_after);
    }

    std::printf("\n-- optimized:\n");
    printUops(trace.uops);

    std::printf("\nsummary: %zu -> %zu uops (%.1f%% reduction), "
                "dependence height %u -> %u\n",
                original.size(), trace.uops.size(),
                100.0 * (1.0 - static_cast<double>(trace.uops.size()) /
                                   original.size()),
                tracecache::computeDepHeight(original),
                tracecache::computeDepHeight(trace.uops));

    std::string why;
    bool ok = true;
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 1000ull}) {
        if (!optimizer::equivalent(original, trace.uops, seed, &why)) {
            ok = false;
            break;
        }
    }
    std::printf("semantic equivalence: %s%s\n", ok ? "OK" : "FAILED: ",
                ok ? "" : why.c_str());
    return ok ? 0 : 1;
}
