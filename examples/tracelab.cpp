/**
 * @file
 * Trace-unit laboratory: runs one application on a PARROT model and
 * dumps the full trace-unit funnel — candidates selected, TIDs
 * promoted, traces inserted, predictions made, hot executions, aborts —
 * plus the resulting coverage. Useful for understanding why an
 * application does (or does not) run hot.
 *
 * Usage: tracelab [app] [model] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    const std::string app = argc > 1 ? argv[1] : "gcc";
    const std::string model = argc > 2 ? argv[2] : "TON";
    const std::uint64_t budget =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 150000;

    sim::RunOptions opts;
    opts.instBudget = budget;
    opts.noLeakage = true;
    sim::SuiteRunner runner(opts);
    auto entry = workload::findApp(app);
    auto r = runner.runOne(model, entry);

    std::printf("app=%s model=%s insts=%llu cycles=%llu ipc=%.3f\n",
                r.app.c_str(), r.model.c_str(),
                static_cast<unsigned long long>(r.insts),
                static_cast<unsigned long long>(r.cycles), r.ipc);
    std::printf("coverage=%.3f  (hot insts %llu)\n", r.coverage,
                static_cast<unsigned long long>(r.insts == 0 ? 0 :
                    static_cast<std::uint64_t>(r.coverage * r.insts)));
    std::printf("traces: inserted=%llu optimized=%llu executions=%llu\n",
                static_cast<unsigned long long>(r.tracesInserted),
                static_cast<unsigned long long>(r.tracesOptimized),
                static_cast<unsigned long long>(r.traceExecutions));
    std::printf("funnel: candidates=%llu tpLookups=%llu tpHits=%llu "
                "tcMissAfterPredict=%llu\n",
                static_cast<unsigned long long>(r.candidatesSeen),
                static_cast<unsigned long long>(r.tpLookups),
                static_cast<unsigned long long>(r.tpHits),
                static_cast<unsigned long long>(r.tcMissAfterPredict));
    std::printf("predictions=%llu aborts=%llu abort-rate=%.3f\n",
                static_cast<unsigned long long>(r.tracePredictions),
                static_cast<unsigned long long>(r.traceMispredicts),
                r.traceMispredRate);
    std::printf("cold branches=%llu mispred=%.4f\n",
                static_cast<unsigned long long>(r.coldCondBranches),
                r.coldBranchMispredRate);
    std::printf("uop reduction: static=%.3f dynamic=%.3f dep=%.3f\n",
                r.avgUopReduction, r.dynamicUopReduction,
                r.avgDepReduction);
    std::printf("utilization=%.1f execs/optimized-trace\n",
                r.optimizerUtilization);

    // Trace-length distribution straight from the selection machinery.
    {
        auto prog = workload::generateProgram(entry.profile);
        workload::Executor ex(*prog, entry.profile);
        tracecache::TraceSelector sel;
        stats::Histogram insts_hist("trace_insts", 16, 8);
        stats::Histogram uops_hist("trace_uops", 16, 8);
        workload::DynInst d;
        tracecache::TraceCandidate c;
        for (std::uint64_t i = 0; i < budget; ++i) {
            ex.next(d);
            sel.feed(d);
            while (sel.pop(c)) {
                insts_hist.sample(c.path.size());
                uops_hist.sample(c.uopCount);
            }
        }
        std::printf("trace length: mean %.1f insts (p50 <%llu, p90 <%llu)"
                    ", mean %.1f uops (p90 <%llu, max %llu)\n",
                    insts_hist.mean(),
                    static_cast<unsigned long long>(
                        insts_hist.percentile(0.5)),
                    static_cast<unsigned long long>(
                        insts_hist.percentile(0.9)),
                    uops_hist.mean(),
                    static_cast<unsigned long long>(
                        uops_hist.percentile(0.9)),
                    static_cast<unsigned long long>(
                        uops_hist.maxValue()));
    }
    return 0;
}
