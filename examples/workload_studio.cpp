/**
 * @file
 * Workload studio: inspect a synthetic application — the static program
 * shape, the dynamic instruction mix, control behaviour and trace
 * characteristics — and compare them with the statistical profile that
 * generated it. Useful when calibrating profiles against published
 * workload characterizations.
 *
 * Usage: workload_studio [app] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    const std::string app = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    auto entry = workload::findApp(app);
    const auto &prof = entry.profile;
    auto program = workload::generateProgram(prof);

    std::printf("application %s (%s), seed %llu\n", prof.name.c_str(),
                workload::benchGroupName(prof.group),
                static_cast<unsigned long long>(prof.seed));

    // --- static shape ---
    std::printf("\nstatic program:\n");
    std::printf("  procedures      : %zu (%d hot + %d cold + main)\n",
                program->procs.size(), prof.numHotProcs,
                prof.numColdProcs);
    std::printf("  instructions    : %zu (%zu uops, %.2f uops/inst)\n",
                program->numStaticInsts(), program->numStaticUops(),
                static_cast<double>(program->numStaticUops()) /
                    program->numStaticInsts());
    std::printf("  code footprint  : %.1f KB (avg inst %.2f bytes)\n",
                program->codeBytes() / 1024.0,
                static_cast<double>(program->codeBytes()) /
                    program->numStaticInsts());

    // --- dynamic behaviour ---
    workload::Executor ex(*program, prof);
    tracecache::TraceSelector sel;
    std::uint64_t uops_by_class[
        static_cast<unsigned>(isa::ExecClass::NumClasses)] = {};
    std::uint64_t cond = 0, cond_taken = 0, calls = 0, rets = 0,
                  indirects = 0, total_uops = 0;
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint64_t, std::uint64_t>> tids;
    std::uint64_t cand_insts = 0;

    workload::DynInst d;
    tracecache::TraceCandidate c;
    for (std::uint64_t i = 0; i < insts; ++i) {
        ex.next(d);
        for (unsigned u = 0; u < d.numUops(); ++u) {
            ++uops_by_class[static_cast<unsigned>(
                d.inst->uops[u].execClass())];
            ++total_uops;
        }
        switch (d.inst->cti) {
          case isa::CtiType::CondBranch:
            ++cond;
            cond_taken += d.taken;
            break;
          case isa::CtiType::Call:    ++calls; break;
          case isa::CtiType::Return:  ++rets; break;
          case isa::CtiType::JumpInd: ++indirects; break;
          default: break;
        }
        sel.feed(d);
        while (sel.pop(c)) {
            auto &e = tids[c.tid.hash()];
            ++e.first;
            e.second += c.path.size();
            cand_insts += c.path.size();
        }
    }

    std::printf("\ndynamic behaviour (%llu insts, %llu uops):\n",
                static_cast<unsigned long long>(insts),
                static_cast<unsigned long long>(total_uops));
    std::printf("  hot-proc share  : %.3f (profile hotness %.2f)\n",
                ex.hotFraction(), prof.hotness);
    for (unsigned k = 0;
         k < static_cast<unsigned>(isa::ExecClass::NumClasses); ++k) {
        if (uops_by_class[k] == 0)
            continue;
        std::printf("  %-10s      : %5.1f%%\n",
                    isa::execClassName(static_cast<isa::ExecClass>(k)),
                    100.0 * uops_by_class[k] / total_uops);
    }
    std::printf("  cond branches   : every %.1f insts, %.1f%% taken\n",
                static_cast<double>(insts) / std::max<std::uint64_t>(1,
                                                                     cond),
                100.0 * cond_taken / std::max<std::uint64_t>(1, cond));
    std::printf("  calls/rets/ind  : %llu / %llu / %llu\n",
                static_cast<unsigned long long>(calls),
                static_cast<unsigned long long>(rets),
                static_cast<unsigned long long>(indirects));

    // --- trace characteristics ---
    std::uint64_t hot_insts = 0, hot_tids = 0;
    double avg_len = 0;
    for (const auto &[hash, e] : tids) {
        avg_len += static_cast<double>(e.second);
        if (e.first >= 8) {
            ++hot_tids;
            hot_insts += e.second;
        }
    }
    std::printf("\ntrace characteristics:\n");
    std::printf("  unique TIDs     : %zu (avg %.1f insts per "
                "candidate)\n",
                tids.size(), avg_len / std::max<std::uint64_t>(
                                           1, cand_insts ? tids.size()
                                                         : 1) /
                                 1.0);
    std::printf("  hot TIDs (>=8x) : %llu covering %.1f%% of the "
                "stream\n",
                static_cast<unsigned long long>(hot_tids),
                100.0 * hot_insts /
                    std::max<std::uint64_t>(1, cand_insts));
    return 0;
}
