/**
 * @file
 * Design-space exploration: the scenario from the paper's introduction.
 *
 * An architect must pick a design point under a power budget. This
 * example sweeps all seven machine models over a representative
 * application set and prints the three decision metrics (IPC, total
 * energy, cubic-MIPS-per-Watt), then answers the paper's two questions:
 * what is the best power-limited design, and what is the best design
 * when the thermal envelope allows more?
 *
 * Usage: design_space [instructions] [--full]
 *   --full runs the whole 44-application suite (slower).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    std::uint64_t budget = 200000;
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            full = true;
        else
            budget = std::strtoull(argv[i], nullptr, 10);
    }

    sim::RunOptions opts;
    opts.instBudget = budget;
    sim::SuiteRunner runner(opts);
    auto suite = full ? workload::fullSuite() : workload::smallSuite();

    std::printf("Design space: %zu applications, %llu instructions "
                "each\n\n", suite.size(),
                static_cast<unsigned long long>(budget));

    struct Point
    {
        std::string model;
        double ipc, energy, cmpw;
    };
    std::vector<Point> points;

    stats::TextTable table;
    table.addRow({"model", "IPC", "vs N", "energy", "vs N", "CMPW",
                  "vs N"});
    Point base{};
    for (const auto &model : sim::ModelConfig::allNames()) {
        auto results = runner.runSuite(model, suite);
        auto ipc = sim::summarizeByGroup(
            results, [](const sim::SimResult &r) { return r.ipc; });
        auto energy = sim::summarizeByGroup(
            results,
            [](const sim::SimResult &r) { return r.totalEnergy; });
        auto cmpw = sim::summarizeByGroup(
            results, [](const sim::SimResult &r) { return r.cmpw; });
        Point p{model, ipc.values.back(), energy.values.back(),
                cmpw.values.back()};
        if (model == "N")
            base = p;
        points.push_back(p);
        table.addRow({
            model,
            stats::TextTable::num(p.ipc, 3),
            stats::TextTable::pct(p.ipc / base.ipc - 1.0),
            stats::TextTable::num(p.energy * 1e-6, 1) + "uJ",
            stats::TextTable::pct(p.energy / base.energy - 1.0),
            stats::TextTable::num(p.cmpw / 1e9, 2) + "G",
            stats::TextTable::pct(p.cmpw / base.cmpw - 1.0),
        });
    }
    std::printf("%s\n", table.render().c_str());

    // Decision 1: power-limited — best IPC within ~5% of N's energy.
    const Point *power_limited = &points[0];
    for (const auto &p : points) {
        if (p.energy <= base.energy * 1.05 &&
            p.ipc > power_limited->ipc) {
            power_limited = &p;
        }
    }
    // Decision 2: unconstrained — best CMPW overall.
    const Point *unconstrained = &points[0];
    for (const auto &p : points) {
        if (p.cmpw > unconstrained->cmpw)
            unconstrained = &p;
    }
    std::printf("power-limited pick  : %s (IPC %+.1f%% at %+.1f%% "
                "energy)\n",
                power_limited->model.c_str(),
                100.0 * (power_limited->ipc / base.ipc - 1.0),
                100.0 * (power_limited->energy / base.energy - 1.0));
    std::printf("power-awareness pick: %s (CMPW %+.1f%%)\n",
                unconstrained->model.c_str(),
                100.0 * (unconstrained->cmpw / base.cmpw - 1.0));
    return 0;
}
