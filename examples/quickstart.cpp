/**
 * @file
 * Quickstart: simulate one application on the baseline 4-wide machine
 * (N) and on the PARROT machine of the same width (TON), and print the
 * headline comparison — performance, energy and the cubic-MIPS-per-Watt
 * power-awareness metric.
 *
 * Usage: quickstart [app] [instructions]
 *   app          application name from the 44-app suite (default: swim)
 *   instructions committed-instruction budget (default: 200000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "parrot/parrot.hh"

int
main(int argc, char **argv)
{
    using namespace parrot;

    const std::string app = argc > 1 ? argv[1] : "swim";
    const std::uint64_t budget =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    sim::RunOptions opts;
    opts.instBudget = budget;
    sim::SuiteRunner runner(opts);

    auto entry = workload::findApp(app);
    std::printf("application: %s (%s), %llu instructions\n",
                entry.profile.name.c_str(),
                workload::benchGroupName(entry.profile.group),
                static_cast<unsigned long long>(budget));

    stats::TextTable table;
    table.addRow({"model", "IPC", "coverage", "energy(uJ)", "CMPW",
                  "L1D miss"});
    sim::SimResult base;
    for (const std::string &model : {"N", "TON", "W", "TOW"}) {
        sim::SimResult r = runner.runOne(model, entry);
        if (model == "N")
            base = r;
        table.addRow({
            model,
            stats::TextTable::num(r.ipc, 3),
            stats::TextTable::num(r.coverage, 3),
            stats::TextTable::num(r.totalEnergy * 1e-6, 2),
            stats::TextTable::num(r.cmpw, 1),
            stats::TextTable::num(r.l1dMissRate, 4),
        });
    }
    std::printf("%s", table.render().c_str());

    sim::SimResult ton = runner.runOne("TON", entry);
    std::printf("\nTON vs N: IPC %+.1f%%  energy %+.1f%%  CMPW %+.1f%%\n",
                100.0 * (ton.ipc / base.ipc - 1.0),
                100.0 * (ton.totalEnergy / base.totalEnergy - 1.0),
                100.0 * (ton.cmpw / base.cmpw - 1.0));
    return 0;
}
